// Package predeval evaluates prefetch predictors offline: it replays
// the request streams a file server (or an xFS node) would observe and
// scores each predictor's one-step-ahead predictions against the
// stream itself, with no cache or disk in the loop. It separates the
// question "how well does the predictor model the access pattern?"
// from the system-level effects the full simulation measures.
package predeval

import (
	"fmt"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StreamMode selects whose point of view the streams reconstruct.
type StreamMode int

// Stream modes.
const (
	// PerFile merges every process's requests to a file into one
	// stream, ordered by approximate issue time — what a PAFS server
	// sees (§4).
	PerFile StreamMode = iota
	// PerNodeFile keeps one stream per (node, file) — what an xFS
	// node's local prefetcher sees.
	PerNodeFile
)

// String names the mode.
func (m StreamMode) String() string {
	if m == PerFile {
		return "per-file"
	}
	return "per-node-file"
}

// event is one request with its approximate issue time (cumulative
// think time of its process; service times are unknown offline, which
// is exactly the approximation this package trades for speed).
type event struct {
	at   sim.Time
	seq  int
	node blockdev.NodeID
	req  core.Request
}

// Result scores one predictor over every stream of a trace.
type Result struct {
	Predictor string
	Mode      StreamMode
	Streams   int
	// Requests is the number of scored requests (every request after
	// the first of its stream).
	Requests int
	// ExactHits counts predictions matching the next request exactly
	// (offset and size).
	ExactHits int
	// CoveredBlocks and TotalBlocks measure partial credit: how many
	// of the next request's blocks fell inside the predicted span.
	CoveredBlocks int64
	TotalBlocks   int64
	// Fallbacks counts predictions that came from IS_PPM's OBA rule.
	Fallbacks int
	// NoPrediction counts requests the predictor declined to predict.
	NoPrediction int
}

// ExactRatio returns the exact-match accuracy.
func (r Result) ExactRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.ExactHits) / float64(r.Requests)
}

// CoverageRatio returns the block-level accuracy.
func (r Result) CoverageRatio() float64 {
	if r.TotalBlocks == 0 {
		return 0
	}
	return float64(r.CoveredBlocks) / float64(r.TotalBlocks)
}

// FallbackRatio returns the share of scored predictions that used the
// cold-start fallback.
func (r Result) FallbackRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Fallbacks) / float64(r.Requests)
}

// String renders the result as one report line.
func (r Result) String() string {
	return fmt.Sprintf("%-12s %-14s streams=%4d reqs=%6d exact=%5.1f%% cover=%5.1f%% fallback=%4.1f%%",
		r.Predictor, r.Mode, r.Streams, r.Requests,
		100*r.ExactRatio(), 100*r.CoverageRatio(), 100*r.FallbackRatio())
}

// streams reconstructs the request streams of a trace under the given
// mode, each sorted by approximate issue time (stable on ties).
func streams(tr *workload.Trace, mode StreamMode, blockSize int64) map[string][]event {
	out := make(map[string][]event)
	seq := 0
	for pi := range tr.Procs {
		p := &tr.Procs[pi]
		var clock sim.Time
		for _, s := range p.Steps {
			clock = clock.Add(s.Think)
			if s.Kind == workload.OpClose {
				continue
			}
			span := blockdev.ByteRangeToSpan(s.File, s.Offset, s.Size, blockSize)
			var key string
			if mode == PerFile {
				key = fmt.Sprintf("f%d", s.File)
			} else {
				key = fmt.Sprintf("n%d/f%d", p.Node, s.File)
			}
			out[key] = append(out[key], event{
				at:   clock,
				seq:  seq,
				node: p.Node,
				req:  core.Request{Offset: span.Start, Size: span.Count},
			})
			seq++
		}
	}
	for _, evs := range out {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].at != evs[j].at {
				return evs[i].at < evs[j].at
			}
			return evs[i].seq < evs[j].seq
		})
	}
	return out
}

// Evaluate scores one predictor family over a trace. mkPred builds a
// fresh predictor per stream (per file or per node-file, matching how
// the file systems keep prefetch state).
func Evaluate(tr *workload.Trace, mode StreamMode, blockSize int64, name string, mkPred func() core.Predictor) Result {
	res := Result{Predictor: name, Mode: mode}
	strs := streams(tr, mode, blockSize)
	// Deterministic iteration order.
	keys := make([]string, 0, len(strs))
	for k := range strs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		evs := strs[k]
		res.Streams++
		pred := mkPred()
		cursor := pred.Observe(evs[0].req, core.Tick(evs[0].at))
		for i := 1; i < len(evs); i++ {
			next := evs[i].req
			res.Requests++
			res.TotalBlocks += int64(next.Size)
			p, _, ok := pred.Predict(cursor)
			if !ok {
				res.NoPrediction++
			} else {
				if p.Fallback {
					res.Fallbacks++
				}
				if p.Request == next {
					res.ExactHits++
				}
				res.CoveredBlocks += overlap(p.Request, next)
			}
			cursor = pred.Observe(next, core.Tick(evs[i].at))
		}
	}
	return res
}

// overlap returns how many of want's blocks lie inside got's span.
func overlap(got, want core.Request) int64 {
	lo := want.Offset
	if got.Offset > lo {
		lo = got.Offset
	}
	hi := want.End()
	if got.End() < hi {
		hi = got.End()
	}
	if hi <= lo {
		return 0
	}
	return int64(hi - lo)
}

// EvaluateStandard scores OBA and IS_PPM:1..3 over the trace in the
// given mode — the comparison cmd/predict prints.
func EvaluateStandard(tr *workload.Trace, mode StreamMode, blockSize int64) []Result {
	out := []Result{
		Evaluate(tr, mode, blockSize, "OBA", func() core.Predictor { return core.NewOBA() }),
	}
	for order := 1; order <= 3; order++ {
		order := order
		out = append(out, Evaluate(tr, mode, blockSize,
			fmt.Sprintf("IS_PPM:%d", order),
			func() core.Predictor { return core.NewISPPM(order) }))
	}
	// The original block-granularity PPM, for the §2.2 comparison.
	out = append(out, Evaluate(tr, mode, blockSize, "BlockPPM:1",
		func() core.Predictor { return core.NewBlockPPM(1) }))
	// The post-paper association predictors.
	out = append(out, Evaluate(tr, mode, blockSize, "Mithril",
		func() core.Predictor { return core.NewMithril() }))
	out = append(out, Evaluate(tr, mode, blockSize, "Markov",
		func() core.Predictor { return core.NewMarkov() }))
	return out
}
