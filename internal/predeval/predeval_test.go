package predeval

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// stridedTrace builds one process issuing a perfectly regular strided
// stream: offset k*stride, one block each, n requests.
func stridedTrace(stride, n int) *workload.Trace {
	const bs = 8192
	tr := &workload.Trace{
		Name:       "strided",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{0: blockdev.BlockNo(stride*n + 1)},
	}
	proc := workload.Process{Node: 0}
	for k := 0; k < n; k++ {
		proc.Steps = append(proc.Steps, workload.Step{
			Think:  sim.Milliseconds(1),
			Kind:   workload.OpRead,
			File:   0,
			Offset: int64(k*stride) * bs,
			Size:   bs,
		})
	}
	tr.Procs = append(tr.Procs, proc)
	return tr
}

func TestISPPMPerfectOnStride(t *testing.T) {
	tr := stridedTrace(4, 50)
	r := Evaluate(tr, PerFile, 8192, "IS_PPM:1", func() core.Predictor { return core.NewISPPM(1) })
	if r.Requests != 49 || r.Streams != 1 {
		t.Fatalf("requests=%d streams=%d", r.Requests, r.Streams)
	}
	// The first two predictions are fallbacks (cold graph); the rest
	// must be exact.
	if r.ExactHits < 45 {
		t.Errorf("exact hits = %d/49; stride should be learned", r.ExactHits)
	}
	if r.FallbackRatio() > 0.1 {
		t.Errorf("fallback ratio %.2f too high", r.FallbackRatio())
	}
}

func TestOBAFailsOnStride(t *testing.T) {
	tr := stridedTrace(4, 50)
	r := Evaluate(tr, PerFile, 8192, "OBA", func() core.Predictor { return core.NewOBA() })
	if r.ExactHits != 0 {
		t.Errorf("OBA got %d exact hits on a stride-4 stream", r.ExactHits)
	}
	if r.CoverageRatio() != 0 {
		t.Errorf("OBA coverage %.2f on disjoint stride", r.CoverageRatio())
	}
}

func TestOBAPerfectOnSequential(t *testing.T) {
	tr := stridedTrace(1, 50)
	r := Evaluate(tr, PerFile, 8192, "OBA", func() core.Predictor { return core.NewOBA() })
	if r.ExactRatio() != 1.0 {
		t.Errorf("OBA exact ratio %.2f on sequential stream, want 1.0", r.ExactRatio())
	}
}

func TestModesSplitStreams(t *testing.T) {
	// Two nodes interleaving on one file: per-file = 1 stream,
	// per-node-file = 2 streams.
	const bs = 8192
	tr := &workload.Trace{
		Name:       "x",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{0: 100},
	}
	for n := 0; n < 2; n++ {
		proc := workload.Process{Node: blockdev.NodeID(n)}
		for k := 0; k < 10; k++ {
			proc.Steps = append(proc.Steps, workload.Step{
				Think: sim.Milliseconds(1), Kind: workload.OpRead,
				File: 0, Offset: int64((2*k + n)) * bs, Size: bs,
			})
		}
		tr.Procs = append(tr.Procs, proc)
	}
	pf := Evaluate(tr, PerFile, bs, "OBA", func() core.Predictor { return core.NewOBA() })
	pnf := Evaluate(tr, PerNodeFile, bs, "OBA", func() core.Predictor { return core.NewOBA() })
	if pf.Streams != 1 || pnf.Streams != 2 {
		t.Errorf("streams = %d/%d, want 1/2", pf.Streams, pnf.Streams)
	}
	// The merged stream is sequential (0,1,2,3,…) — OBA aces it; the
	// per-node streams are stride-2 — OBA fails.
	if pf.ExactRatio() < 0.9 {
		t.Errorf("merged OBA accuracy %.2f, want ~1", pf.ExactRatio())
	}
	if pnf.ExactRatio() != 0 {
		t.Errorf("per-node OBA accuracy %.2f, want 0", pnf.ExactRatio())
	}
}

func TestClosesAreIgnored(t *testing.T) {
	tr := stridedTrace(1, 10)
	tr.Procs[0].Steps = append(tr.Procs[0].Steps, workload.Step{
		Kind: workload.OpClose, File: 0,
	})
	r := Evaluate(tr, PerFile, 8192, "OBA", func() core.Predictor { return core.NewOBA() })
	if r.Requests != 9 {
		t.Errorf("close step was scored: requests=%d", r.Requests)
	}
}

func TestEvaluateStandardShape(t *testing.T) {
	tr := stridedTrace(3, 30)
	results := EvaluateStandard(tr, PerFile, 8192)
	if len(results) != 7 {
		t.Fatalf("%d results, want 7", len(results))
	}
	if results[0].Predictor != "OBA" || results[1].Predictor != "IS_PPM:1" || results[4].Predictor != "BlockPPM:1" ||
		results[5].Predictor != "Mithril" || results[6].Predictor != "Markov" {
		t.Error("result order wrong")
	}
	if results[1].ExactRatio() <= results[0].ExactRatio() {
		t.Error("IS_PPM should beat OBA on a strided stream")
	}
	// Fresh strided data: block-PPM cannot predict it at all (§2.2).
	if results[4].ExactRatio() != 0 {
		t.Errorf("BlockPPM exact ratio %.2f on fresh strided data, want 0", results[4].ExactRatio())
	}
	if results[0].String() == "" {
		t.Error("empty report line")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		got, want core.Request
		n         int64
	}{
		{core.Request{Offset: 0, Size: 4}, core.Request{Offset: 0, Size: 4}, 4},
		{core.Request{Offset: 0, Size: 4}, core.Request{Offset: 2, Size: 4}, 2},
		{core.Request{Offset: 10, Size: 2}, core.Request{Offset: 0, Size: 4}, 0},
		{core.Request{Offset: 0, Size: 8}, core.Request{Offset: 2, Size: 2}, 2},
	}
	for _, c := range cases {
		if got := overlap(c.got, c.want); got != c.n {
			t.Errorf("overlap(%v,%v) = %d, want %d", c.got, c.want, got, c.n)
		}
	}
}

func TestEmptyResultRatios(t *testing.T) {
	var r Result
	if r.ExactRatio() != 0 || r.CoverageRatio() != 0 || r.FallbackRatio() != 0 {
		t.Error("empty result ratios should be 0")
	}
}

func TestModeStrings(t *testing.T) {
	if PerFile.String() != "per-file" || PerNodeFile.String() != "per-node-file" {
		t.Error("mode strings wrong")
	}
}
