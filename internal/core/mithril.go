package core

import (
	"repro/internal/blockdev"
)

// Mithril is a sporadic-association prefetch predictor in the spirit
// of MITHRIL (Yang et al.): instead of following a chain of
// most-recent transitions like IS_PPM, it *mines* the recent access
// history for block pairs that occur near each other in time — at two
// configurable timescales — and keeps the repeatedly-confirmed pairs
// in a bounded association table. A prediction is "after the block
// just requested, the blocks historically requested close behind it",
// however irregular the gap between their joint appearances.
//
// The design point it covers and the MRU-chain predictors miss: a
// request stream where a recurring group of requests (a web page and
// its embedded assets, a key's index block and its data block) is
// interleaved with unrelated traffic. IS_PPM keys its graph on the
// exact last-j (interval, size) pairs, so any interleaving perturbs
// the key and the chain never re-matches; Mithril keys on the
// *absolute* block and searches a window of the merged stream, so the
// association survives arbitrary interleaving as long as the pair
// lands within the window.
//
// Following the paper's terminology, the miner works on timestamped
// history pairs: every request start carries its logical timestamp
// (its index in the stream), the miner walks the last LongWindow
// entries, and a pair is recorded with double weight when its gap is
// within ShortWindow (the fast timescale) and single weight out to
// LongWindow (the slow timescale). A pair only predicts once its
// accumulated weight reaches MinSupport — one chance co-occurrence is
// noise, sporadic *re*-occurrence is signal.
//
// Memory is strictly bounded: at most MaxRows source blocks, each with
// at most RowWidth candidate successors; full tables evict the
// least-recently-updated row, exactly like IS_PPM's node bound.
type Mithril struct {
	cfg MithrilConfig

	seq    Tick // logical timestamp of the last observed request
	recent []mithrilEvent
	head   int // ring cursor: next slot to overwrite
	filled int // number of valid entries in recent

	rows map[blockdev.BlockNo]*mithrilRow
}

// MithrilConfig bounds the miner. The zero value selects the defaults.
type MithrilConfig struct {
	// ShortWindow and LongWindow are the two mining timescales, in
	// *requests* of the observed stream (logical time, so the same
	// model works under the simulator clock and the live engine). A
	// pair with gap <= ShortWindow gets weight 2, a pair with gap <=
	// LongWindow weight 1. Defaults 4 and 16.
	ShortWindow int
	LongWindow  int
	// MinSupport is the accumulated weight a pair needs before it
	// predicts. Default 3 (one short-range plus one long-range
	// co-occurrence, or two short-range ones).
	MinSupport uint32
	// MaxRows bounds the association table's source blocks; RowWidth
	// bounds candidates per source. Defaults 4096 and 4.
	MaxRows  int
	RowWidth int
	// MaxChain bounds speculative chain depth per real request, so an
	// aggressive driver cannot walk association cycles forever.
	// Default 8.
	MaxChain int
}

// withDefaults fills unset fields.
func (c MithrilConfig) withDefaults() MithrilConfig {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 4
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = 16
		if c.LongWindow < c.ShortWindow {
			c.LongWindow = c.ShortWindow
		}
	}
	if c.MinSupport == 0 {
		c.MinSupport = 3
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 4096
	}
	if c.RowWidth <= 0 {
		c.RowWidth = 4
	}
	if c.MaxChain <= 0 {
		c.MaxChain = 8
	}
	return c
}

// mithrilEvent is one remembered request start.
type mithrilEvent struct {
	block blockdev.BlockNo
	size  int32
	at    Tick
}

// mithrilCand is one candidate successor of a row.
type mithrilCand struct {
	block  blockdev.BlockNo
	size   int32 // size of the request that confirmed the pair last
	weight uint32
}

// mithrilRow is the bounded successor list of one source block.
type mithrilRow struct {
	cands      []mithrilCand
	lastUpdate Tick
}

// mithrilCursor is a (real or speculative) stream position: the last
// block plus the chain depth walked since the last real request.
type mithrilCursor struct {
	block blockdev.BlockNo
	size  int32
	depth int
}

// NewMithril returns a miner with the default configuration.
func NewMithril() *Mithril { return NewMithrilConfigured(MithrilConfig{}) }

// NewMithrilConfigured returns a miner with explicit bounds.
func NewMithrilConfigured(cfg MithrilConfig) *Mithril {
	cfg = cfg.withDefaults()
	return &Mithril{
		cfg:    cfg,
		recent: make([]mithrilEvent, cfg.LongWindow),
		rows:   make(map[blockdev.BlockNo]*mithrilRow),
	}
}

// Name identifies the algorithm.
func (*Mithril) Name() string { return "Mithril" }

// RowCount returns the number of association rows currently held.
func (m *Mithril) RowCount() int { return len(m.rows) }

// MaxRows returns the configured row bound (for conformance checks).
func (m *Mithril) MaxRows() int { return m.cfg.MaxRows }

// Observe mines the request against the recent window and appends it.
func (m *Mithril) Observe(r Request, _ Tick) Cursor {
	// Logical time: the index of this request in the observed stream.
	// Wall/simulated time is deliberately not used — the two clocks
	// tick at wildly different rates and the mining windows are defined
	// over the stream itself.
	m.seq++
	now := m.seq
	b := r.Offset

	// Walk the window newest-first; gap g is in requests.
	for g := 1; g <= m.filled; g++ {
		idx := m.head - g
		if idx < 0 {
			idx += len(m.recent)
		}
		ev := m.recent[idx]
		if ev.block == b {
			continue // self-loops predict nothing useful
		}
		var w uint32 = 1
		if g <= m.cfg.ShortWindow {
			w = 2
		}
		m.bump(ev.block, b, r.Size, w, now)
	}

	m.recent[m.head] = mithrilEvent{block: b, size: r.Size, at: now}
	m.head = (m.head + 1) % len(m.recent)
	if m.filled < len(m.recent) {
		m.filled++
	}
	return mithrilCursor{block: b, size: r.Size}
}

// bump strengthens the association src -> dst by w.
func (m *Mithril) bump(src, dst blockdev.BlockNo, size int32, w uint32, now Tick) {
	row := m.rows[src]
	if row == nil {
		if len(m.rows) >= m.cfg.MaxRows {
			m.evictOldestRow()
		}
		row = &mithrilRow{}
		m.rows[src] = row
	}
	row.lastUpdate = now
	for i := range row.cands {
		if row.cands[i].block == dst {
			row.cands[i].weight += w
			row.cands[i].size = size
			return
		}
	}
	if len(row.cands) < m.cfg.RowWidth {
		row.cands = append(row.cands, mithrilCand{block: dst, size: size, weight: w})
		return
	}
	// Row full: displace the weakest candidate only if the newcomer's
	// initial weight would not be the weakest — otherwise decay the
	// weakest so a persistently re-confirmed newcomer eventually wins
	// (a bounded variant of space-saving counting).
	weakest := 0
	for i := 1; i < len(row.cands); i++ {
		if row.cands[i].weight < row.cands[weakest].weight {
			weakest = i
		}
	}
	if row.cands[weakest].weight <= w {
		row.cands[weakest] = mithrilCand{block: dst, size: size, weight: w}
	} else {
		row.cands[weakest].weight--
	}
}

// evictOldestRow discards the least recently updated row.
func (m *Mithril) evictOldestRow() {
	var victim blockdev.BlockNo
	var at Tick
	first := true
	for b, row := range m.rows {
		if first || row.lastUpdate < at {
			victim, at, first = b, row.lastUpdate, false
		}
	}
	if !first {
		delete(m.rows, victim)
	}
}

// Predict returns the strongest sufficiently-supported association out
// of the cursor's block, advancing the chain one step.
func (m *Mithril) Predict(c Cursor) (Prediction, Cursor, bool) {
	cur, ok := c.(mithrilCursor)
	if !ok {
		return Prediction{}, nil, false
	}
	if cur.depth >= m.cfg.MaxChain {
		return Prediction{}, cur, false
	}
	row := m.rows[cur.block]
	if row == nil {
		return Prediction{}, cur, false
	}
	best := -1
	for i := range row.cands {
		if row.cands[i].weight < m.cfg.MinSupport {
			continue
		}
		if best < 0 || row.cands[i].weight > row.cands[best].weight {
			best = i
		}
	}
	if best < 0 {
		return Prediction{}, cur, false
	}
	cand := row.cands[best]
	p := Prediction{Request: Request{Offset: cand.block, Size: cand.size}}
	return p, mithrilCursor{block: cand.block, size: cand.size, depth: cur.depth + 1}, true
}
