package core

import (
	"fmt"
	"sort"
	"strings"
)

// AlgKind selects the base predictor of an algorithm configuration.
type AlgKind int

// Base predictors.
const (
	AlgNone     AlgKind = iota // no prefetching (the paper's NP baseline)
	AlgOBA                     // One-Block-Ahead
	AlgISPPM                   // IS_PPM:Order
	AlgBlockPPM                // original block-granularity PPM (related-work baseline)
	AlgMithril                 // sporadic-association miner (MITHRIL-style)
	AlgMarkov                  // probability-matrix Markov chains (Pangloss-style)
)

// AlgSpec is one named algorithm configuration from the paper's
// evaluation: a predictor plus how aggressively it is driven.
type AlgSpec struct {
	Kind  AlgKind
	Order int // IS_PPM order; ignored otherwise
	Mode  Mode
	// MaxOutstanding: 1 = linear (the paper's throttle), 0 = unlimited.
	// When Adaptive is set it is the controller's hard cap K instead.
	MaxOutstanding int
	// Adaptive replaces the static throttle with the feedback-directed
	// AdaptiveFDP controller: the per-file window starts at 1 and moves
	// within [1, MaxOutstanding] from measured accuracy and timeliness.
	// Only meaningful with ModeAggressive.
	Adaptive bool

	// Ablation switches (all false reproduces the paper's design).

	// MostProbableLinks makes IS_PPM follow the original PPM
	// most-traversed link instead of the most recent one.
	MostProbableLinks bool
	// NoFallback disables IS_PPM's cold-start OBA rule.
	NoFallback bool
	// UserPriorityPrefetch issues prefetch disk reads at user
	// priority instead of the paper's strictly lower one (§4).
	UserPriorityPrefetch bool
}

// Name renders the paper's label for the configuration, with
// bracketed suffixes for any ablation switches.
func (s AlgSpec) Name() string {
	var name string
	switch s.Kind {
	case AlgNone:
		return "NP"
	case AlgOBA, AlgISPPM, AlgBlockPPM, AlgMithril, AlgMarkov:
		base := "OBA"
		switch s.Kind {
		case AlgISPPM:
			base = fmt.Sprintf("IS_PPM:%d", s.Order)
		case AlgBlockPPM:
			base = fmt.Sprintf("BlockPPM:%d", s.Order)
		case AlgMithril:
			base = "Mithril"
		case AlgMarkov:
			base = "Markov"
		}
		switch {
		case s.Mode == ModeOneShot:
			name = base
		case s.Adaptive && s.MaxOutstanding == DefaultAdaptiveCap:
			name = "Ad_Agr_" + base
		case s.Adaptive:
			name = fmt.Sprintf("Ad%d_Agr_%s", s.MaxOutstanding, base)
		case s.MaxOutstanding == 1:
			name = "Ln_Agr_" + base
		case s.MaxOutstanding == 0:
			name = "Agr_" + base
		default:
			name = fmt.Sprintf("K%d_Agr_%s", s.MaxOutstanding, base)
		}
	default:
		return fmt.Sprintf("unknown(%d)", int(s.Kind))
	}
	if s.MostProbableLinks {
		name += "[prob]"
	}
	if s.NoFallback {
		name += "[nofb]"
	}
	if s.UserPriorityPrefetch {
		name += "[uprio]"
	}
	return name
}

// Validate checks that the configuration is runnable, so a sweep can
// reject a bad specification up front instead of panicking mid-cell.
func (s AlgSpec) Validate() error {
	switch s.Kind {
	case AlgNone, AlgOBA, AlgMithril, AlgMarkov:
	case AlgISPPM, AlgBlockPPM:
		if s.Order < 1 {
			return fmt.Errorf("core: %s needs order >= 1, got %d", s.Name(), s.Order)
		}
	default:
		return fmt.Errorf("core: unknown algorithm kind %d", int(s.Kind))
	}
	if s.MaxOutstanding < 0 {
		return fmt.Errorf("core: %s has negative outstanding limit %d", s.Name(), s.MaxOutstanding)
	}
	if s.Adaptive {
		if s.Mode != ModeAggressive {
			return fmt.Errorf("core: %s is adaptive but not aggressive", s.Name())
		}
		if s.MaxOutstanding < 1 {
			return fmt.Errorf("core: %s is adaptive and needs a hard cap >= 1, got %d", s.Name(), s.MaxOutstanding)
		}
	}
	return nil
}

// NewDegreePolicy instantiates the spec's outstanding-prefetch policy:
// the AdaptiveFDP controller (cap = MaxOutstanding) for adaptive
// specs, otherwise the static FixedDegree the paper assumes. Per-file:
// each driver needs its own.
func (s AlgSpec) NewDegreePolicy() DegreePolicy {
	if s.Adaptive {
		return NewAdaptiveFDP(AdaptiveFDPConfig{Cap: s.MaxOutstanding})
	}
	return &FixedDegree{K: s.MaxOutstanding}
}

// DegreeCap returns the largest per-file outstanding count the spec's
// policy can ever allow (0 = unlimited); ledgers audit high-water
// marks against it. For static specs it is MaxOutstanding itself, so
// the paper's linear configurations still audit against exactly 1.
func (s AlgSpec) DegreeCap() int { return s.MaxOutstanding }

// AdaptiveVariant returns s driven by the feedback controller with the
// given hard cap (<= 0 selects DefaultAdaptiveCap). The mode is forced
// aggressive: adaptivity modulates a running chain.
func AdaptiveVariant(s AlgSpec, cap int) AlgSpec {
	if cap <= 0 {
		cap = DefaultAdaptiveCap
	}
	s.Adaptive = true
	s.Mode = ModeAggressive
	s.MaxOutstanding = cap
	return s
}

// Prefetches reports whether the configuration prefetches at all.
func (s AlgSpec) Prefetches() bool { return s.Kind != AlgNone }

// NewPredictor instantiates the configured predictor; it panics for
// AlgNone, which has none.
func (s AlgSpec) NewPredictor() Predictor {
	switch s.Kind {
	case AlgOBA:
		return NewOBA()
	case AlgISPPM:
		m := NewISPPM(s.Order)
		if s.MostProbableLinks {
			m.SetLinkPolicy(MostProbableLinkPolicy)
		}
		m.SetFallback(!s.NoFallback)
		return m
	case AlgBlockPPM:
		return NewBlockPPM(s.Order)
	case AlgMithril:
		return NewMithril()
	case AlgMarkov:
		return NewMarkov()
	default:
		panic("core: AlgSpec " + s.Name() + " has no predictor")
	}
}

// Canonical configurations from the paper's figures.
var (
	// SpecNP is the no-prefetching baseline.
	SpecNP = AlgSpec{Kind: AlgNone}
	// SpecOBA is conservative One-Block-Ahead. One-shot algorithms
	// prefetch their whole predicted batch in parallel: the paper's
	// linear (one-at-a-time) throttle is introduced specifically for
	// the aggressive variants (§3.2).
	SpecOBA = AlgSpec{Kind: AlgOBA, Mode: ModeOneShot, MaxOutstanding: 0}
	// SpecLnAgrOBA is linear aggressive OBA.
	SpecLnAgrOBA = AlgSpec{Kind: AlgOBA, Mode: ModeAggressive, MaxOutstanding: 1}
	// SpecISPPM1 is the non-aggressive 1st-order predictor.
	SpecISPPM1 = AlgSpec{Kind: AlgISPPM, Order: 1, Mode: ModeOneShot, MaxOutstanding: 0}
	// SpecLnAgrISPPM1 is linear aggressive IS_PPM:1.
	SpecLnAgrISPPM1 = AlgSpec{Kind: AlgISPPM, Order: 1, Mode: ModeAggressive, MaxOutstanding: 1}
	// SpecISPPM3 is the non-aggressive 3rd-order predictor.
	SpecISPPM3 = AlgSpec{Kind: AlgISPPM, Order: 3, Mode: ModeOneShot, MaxOutstanding: 0}
	// SpecLnAgrISPPM3 is linear aggressive IS_PPM:3.
	SpecLnAgrISPPM3 = AlgSpec{Kind: AlgISPPM, Order: 3, Mode: ModeAggressive, MaxOutstanding: 1}

	// Adaptive variants: the same chains, but the per-file window is
	// feedback-controlled within [1, DefaultAdaptiveCap] instead of
	// pinned at 1. These go beyond the paper (ROADMAP).

	// SpecAdAgrOBA is adaptive aggressive OBA.
	SpecAdAgrOBA = AdaptiveVariant(SpecLnAgrOBA, DefaultAdaptiveCap)
	// SpecAdAgrISPPM1 is adaptive aggressive IS_PPM:1.
	SpecAdAgrISPPM1 = AdaptiveVariant(SpecLnAgrISPPM1, DefaultAdaptiveCap)
	// SpecAdAgrISPPM3 is adaptive aggressive IS_PPM:3.
	SpecAdAgrISPPM3 = AdaptiveVariant(SpecLnAgrISPPM3, DefaultAdaptiveCap)

	// The post-paper predictors (ROADMAP: "open the scenario space").
	// One-shot, linear aggressive, and adaptive variants mirror the
	// paper algorithms' ladder.

	// SpecMithril is the one-shot sporadic-association miner.
	SpecMithril = AlgSpec{Kind: AlgMithril, Mode: ModeOneShot, MaxOutstanding: 0}
	// SpecLnAgrMithril is linear aggressive Mithril.
	SpecLnAgrMithril = AlgSpec{Kind: AlgMithril, Mode: ModeAggressive, MaxOutstanding: 1}
	// SpecAdAgrMithril is adaptive aggressive Mithril.
	SpecAdAgrMithril = AdaptiveVariant(SpecLnAgrMithril, DefaultAdaptiveCap)
	// SpecMarkov is the one-shot probability-matrix Markov predictor.
	SpecMarkov = AlgSpec{Kind: AlgMarkov, Mode: ModeOneShot, MaxOutstanding: 0}
	// SpecLnAgrMarkov is linear aggressive Markov.
	SpecLnAgrMarkov = AlgSpec{Kind: AlgMarkov, Mode: ModeAggressive, MaxOutstanding: 1}
	// SpecAdAgrMarkov is adaptive aggressive Markov.
	SpecAdAgrMarkov = AdaptiveVariant(SpecLnAgrMarkov, DefaultAdaptiveCap)
)

// StandardAlgorithms returns the seven configurations every figure of
// the paper sweeps, in the paper's legend order.
func StandardAlgorithms() []AlgSpec {
	return []AlgSpec{
		SpecNP,
		SpecOBA,
		SpecLnAgrOBA,
		SpecISPPM1,
		SpecLnAgrISPPM1,
		SpecISPPM3,
		SpecLnAgrISPPM3,
	}
}

// NamedAlgorithms returns every configuration addressable by name:
// the standard seven plus the unthrottled aggressive variants, the
// block-granularity PPM baseline, and the post-paper Mithril/Markov
// predictors in their one-shot, linear aggressive, and adaptive
// forms. Command-line tools resolve -alg flags against this set, and
// the conformance suite runs every entry.
func NamedAlgorithms() []AlgSpec {
	return append(StandardAlgorithms(),
		AlgSpec{Kind: AlgOBA, Mode: ModeAggressive, MaxOutstanding: 0},
		AlgSpec{Kind: AlgISPPM, Order: 1, Mode: ModeAggressive, MaxOutstanding: 0},
		AlgSpec{Kind: AlgISPPM, Order: 3, Mode: ModeAggressive, MaxOutstanding: 0},
		AlgSpec{Kind: AlgBlockPPM, Order: 1, Mode: ModeAggressive, MaxOutstanding: 1},
		SpecAdAgrOBA,
		SpecAdAgrISPPM1,
		SpecAdAgrISPPM3,
		SpecMithril,
		SpecLnAgrMithril,
		SpecAdAgrMithril,
		SpecMarkov,
		SpecLnAgrMarkov,
		SpecAdAgrMarkov,
	)
}

// UnknownAlgError reports a LookupAlg miss. It carries the full list
// of valid names so command-line surfaces can print an actionable
// message instead of a bare "unknown algorithm".
type UnknownAlgError struct {
	Name  string
	Known []string
}

// Error lists the valid names, sorted, after the offending one.
func (e *UnknownAlgError) Error() string {
	known := append([]string(nil), e.Known...)
	sort.Strings(known)
	return fmt.Sprintf("unknown algorithm %q (valid: %s)", e.Name, strings.Join(known, ", "))
}

// LookupAlg resolves a paper-notation algorithm name ("NP", "OBA",
// "Ln_Agr_IS_PPM:3", ...) to its configuration. A miss returns an
// *UnknownAlgError naming every valid configuration.
func LookupAlg(name string) (AlgSpec, error) {
	for _, s := range NamedAlgorithms() {
		if s.Name() == name {
			return s, nil
		}
	}
	return AlgSpec{}, &UnknownAlgError{Name: name, Known: AlgNames()}
}

// AlgNames returns the names of every named configuration, in order.
func AlgNames() []string {
	specs := NamedAlgorithms()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name()
	}
	return out
}

// AggressiveAlgorithms returns the three linear aggressive
// configurations plotted as bars in Figures 8–11 and the columns of
// Table 2 (plus NP as their reference line).
func AggressiveAlgorithms() []AlgSpec {
	return []AlgSpec{SpecLnAgrOBA, SpecLnAgrISPPM1, SpecLnAgrISPPM3}
}
