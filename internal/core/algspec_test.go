package core

import (
	"testing"
)

func TestAlgSpecNames(t *testing.T) {
	cases := []struct {
		spec AlgSpec
		want string
	}{
		{SpecNP, "NP"},
		{SpecOBA, "OBA"},
		{SpecLnAgrOBA, "Ln_Agr_OBA"},
		{SpecISPPM1, "IS_PPM:1"},
		{SpecLnAgrISPPM1, "Ln_Agr_IS_PPM:1"},
		{SpecISPPM3, "IS_PPM:3"},
		{SpecLnAgrISPPM3, "Ln_Agr_IS_PPM:3"},
		{AlgSpec{Kind: AlgOBA, Mode: ModeAggressive, MaxOutstanding: 0}, "Agr_OBA"},
		{AlgSpec{Kind: AlgISPPM, Order: 2, Mode: ModeAggressive, MaxOutstanding: 4}, "K4_Agr_IS_PPM:2"},
		{AlgSpec{Kind: AlgKind(99)}, "unknown(99)"},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestStandardAlgorithmsMatchPaperLegend(t *testing.T) {
	want := []string{"NP", "OBA", "Ln_Agr_OBA", "IS_PPM:1", "Ln_Agr_IS_PPM:1", "IS_PPM:3", "Ln_Agr_IS_PPM:3"}
	got := StandardAlgorithms()
	if len(got) != len(want) {
		t.Fatalf("%d algorithms, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name() != want[i] {
			t.Errorf("algorithm %d = %q, want %q", i, got[i].Name(), want[i])
		}
	}
}

func TestAggressiveAlgorithms(t *testing.T) {
	got := AggressiveAlgorithms()
	if len(got) != 3 {
		t.Fatalf("%d aggressive algorithms, want 3", len(got))
	}
	for _, s := range got {
		if s.Mode != ModeAggressive || s.MaxOutstanding != 1 {
			t.Errorf("%s is not linear aggressive", s.Name())
		}
	}
}

func TestAlgSpecAblationNamesAndPriority(t *testing.T) {
	s := SpecLnAgrISPPM1
	s.MostProbableLinks = true
	s.NoFallback = true
	s.UserPriorityPrefetch = true
	if got := s.Name(); got != "Ln_Agr_IS_PPM:1[prob][nofb][uprio]" {
		t.Errorf("Name = %q", got)
	}
	// The ablation predictor must carry the switches.
	m, ok := s.NewPredictor().(*ISPPM)
	if !ok {
		t.Fatal("wrong predictor type")
	}
	if m.policy != MostProbableLinkPolicy || !m.noFallback {
		t.Error("ablation switches not applied to the predictor")
	}
}

func TestAlgSpecNewPredictor(t *testing.T) {
	if SpecOBA.NewPredictor().Name() != "OBA" {
		t.Error("OBA predictor wrong")
	}
	if SpecLnAgrISPPM3.NewPredictor().Name() != "IS_PPM:3" {
		t.Error("IS_PPM predictor wrong")
	}
	if !SpecOBA.Prefetches() || SpecNP.Prefetches() {
		t.Error("Prefetches wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPredictor on NP did not panic")
		}
	}()
	SpecNP.NewPredictor()
}
