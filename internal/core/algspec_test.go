package core

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestAlgSpecNames(t *testing.T) {
	cases := []struct {
		spec AlgSpec
		want string
	}{
		{SpecNP, "NP"},
		{SpecOBA, "OBA"},
		{SpecLnAgrOBA, "Ln_Agr_OBA"},
		{SpecISPPM1, "IS_PPM:1"},
		{SpecLnAgrISPPM1, "Ln_Agr_IS_PPM:1"},
		{SpecISPPM3, "IS_PPM:3"},
		{SpecLnAgrISPPM3, "Ln_Agr_IS_PPM:3"},
		{AlgSpec{Kind: AlgOBA, Mode: ModeAggressive, MaxOutstanding: 0}, "Agr_OBA"},
		{AlgSpec{Kind: AlgISPPM, Order: 2, Mode: ModeAggressive, MaxOutstanding: 4}, "K4_Agr_IS_PPM:2"},
		{SpecMithril, "Mithril"},
		{SpecLnAgrMithril, "Ln_Agr_Mithril"},
		{SpecAdAgrMithril, "Ad_Agr_Mithril"},
		{SpecMarkov, "Markov"},
		{SpecLnAgrMarkov, "Ln_Agr_Markov"},
		{SpecAdAgrMarkov, "Ad_Agr_Markov"},
		{AlgSpec{Kind: AlgKind(99)}, "unknown(99)"},
	}
	for _, c := range cases {
		if got := c.spec.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestStandardAlgorithmsMatchPaperLegend(t *testing.T) {
	want := []string{"NP", "OBA", "Ln_Agr_OBA", "IS_PPM:1", "Ln_Agr_IS_PPM:1", "IS_PPM:3", "Ln_Agr_IS_PPM:3"}
	got := StandardAlgorithms()
	if len(got) != len(want) {
		t.Fatalf("%d algorithms, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name() != want[i] {
			t.Errorf("algorithm %d = %q, want %q", i, got[i].Name(), want[i])
		}
	}
}

func TestAggressiveAlgorithms(t *testing.T) {
	got := AggressiveAlgorithms()
	if len(got) != 3 {
		t.Fatalf("%d aggressive algorithms, want 3", len(got))
	}
	for _, s := range got {
		if s.Mode != ModeAggressive || s.MaxOutstanding != 1 {
			t.Errorf("%s is not linear aggressive", s.Name())
		}
	}
}

func TestAlgSpecAblationNamesAndPriority(t *testing.T) {
	s := SpecLnAgrISPPM1
	s.MostProbableLinks = true
	s.NoFallback = true
	s.UserPriorityPrefetch = true
	if got := s.Name(); got != "Ln_Agr_IS_PPM:1[prob][nofb][uprio]" {
		t.Errorf("Name = %q", got)
	}
	// The ablation predictor must carry the switches.
	m, ok := s.NewPredictor().(*ISPPM)
	if !ok {
		t.Fatal("wrong predictor type")
	}
	if m.policy != MostProbableLinkPolicy || !m.noFallback {
		t.Error("ablation switches not applied to the predictor")
	}
}

// TestLookupAlgEveryRegisteredName: every name in the registry must
// round-trip through LookupAlg to a spec with the identical name, and
// every registered spec must validate and construct.
func TestLookupAlgEveryRegisteredName(t *testing.T) {
	names := AlgNames()
	if len(names) != len(NamedAlgorithms()) {
		t.Fatalf("AlgNames returned %d names for %d specs", len(names), len(NamedAlgorithms()))
	}
	seen := make(map[string]bool)
	for _, name := range names {
		if seen[name] {
			t.Errorf("duplicate registered name %q", name)
		}
		seen[name] = true
		spec, err := LookupAlg(name)
		if err != nil {
			t.Errorf("LookupAlg(%q): %v", name, err)
			continue
		}
		if spec.Name() != name {
			t.Errorf("LookupAlg(%q).Name() = %q", name, spec.Name())
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("registered spec %q does not validate: %v", name, err)
		}
		if spec.Prefetches() && spec.NewPredictor() == nil {
			t.Errorf("registered spec %q constructs a nil predictor", name)
		}
	}
	// The post-paper predictors must actually be registered.
	for _, want := range []string{"Mithril", "Ln_Agr_Mithril", "Ad_Agr_Mithril", "Markov", "Ln_Agr_Markov", "Ad_Agr_Markov"} {
		if !seen[want] {
			t.Errorf("%q not in the named algorithm set", want)
		}
	}
}

// TestLookupAlgUnknownTypedError: a miss must surface as
// *UnknownAlgError carrying the full valid-name list, so -alg error
// messages are actionable.
func TestLookupAlgUnknownTypedError(t *testing.T) {
	_, err := LookupAlg("IS_PPM:9000")
	if err == nil {
		t.Fatal("LookupAlg on an unknown name returned nil error")
	}
	var ua *UnknownAlgError
	if !errors.As(err, &ua) {
		t.Fatalf("error is %T, want *UnknownAlgError", err)
	}
	if ua.Name != "IS_PPM:9000" {
		t.Errorf("Name = %q", ua.Name)
	}
	wantKnown := AlgNames()
	gotKnown := append([]string(nil), ua.Known...)
	sort.Strings(wantKnown)
	sort.Strings(gotKnown)
	if !reflect.DeepEqual(gotKnown, wantKnown) {
		t.Errorf("Known = %v, want every registered name", ua.Known)
	}
	msg := err.Error()
	if !strings.Contains(msg, "IS_PPM:9000") || !strings.Contains(msg, "Ln_Agr_Mithril") {
		t.Errorf("message does not name the offender and the valid set: %q", msg)
	}
}

func TestAlgSpecNewPredictor(t *testing.T) {
	if SpecOBA.NewPredictor().Name() != "OBA" {
		t.Error("OBA predictor wrong")
	}
	if SpecLnAgrISPPM3.NewPredictor().Name() != "IS_PPM:3" {
		t.Error("IS_PPM predictor wrong")
	}
	if !SpecOBA.Prefetches() || SpecNP.Prefetches() {
		t.Error("Prefetches wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPredictor on NP did not panic")
		}
	}()
	SpecNP.NewPredictor()
}
