package core

import (
	"testing"
)

func TestOneShotUnlimitedIssuesBatchInParallel(t *testing.T) {
	// One-shot IS_PPM with MaxOutstanding 0 (the paper's non-aggressive
	// configuration) must put the whole predicted request in flight at
	// once, exploiting the striped disks.
	env := newFakeEnv()
	m := NewISPPM(1)
	d := NewDriver(DriverConfig{
		Predictor: m, Mode: ModeOneShot, MaxOutstanding: 0,
		File: 1, FileBlocks: 1000, Env: env,
	})
	// Teach a pattern with 8-block requests at stride 10.
	reqs := []Request{{0, 8}, {10, 8}, {20, 8}, {30, 8}}
	for i, r := range reqs {
		env.inflight = nil
		d.OnUserRequest(r, Tick(i+1), false)
	}
	// After the 4th request the prediction is (40, 8): all 8 blocks in
	// flight simultaneously.
	if len(env.inflight) != 8 {
		t.Fatalf("%d blocks in flight, want 8 (parallel batch)", len(env.inflight))
	}
	for i, op := range env.inflight {
		if op.b != bid(1, 40+i) {
			t.Errorf("in-flight[%d] = %v, want 1:%d", i, op.b, 40+i)
		}
	}
}

func TestStopChainHaltsAndReopenResumes(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 1000, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	env.completeOne()
	if len(env.inflight) != 1 {
		t.Fatal("chain not running")
	}
	d.StopChain()
	// The queued op must be orphaned…
	if !env.inflight[0].cancelled() {
		t.Error("in-flight op not cancelled by StopChain")
	}
	env.completeAll()
	issued := len(env.issued)
	// …and nothing new is issued while stopped.
	if len(env.issued) != issued {
		t.Error("stopped chain issued more work")
	}
	if d.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after StopChain", d.Outstanding())
	}
	// A satisfied request after a close resumes from the real cursor.
	env.cache[bid(1, 50)] = true
	d.OnUserRequest(Request{Offset: 50, Size: 1}, 2, true)
	if len(env.inflight) != 1 || env.inflight[0].b != bid(1, 51) {
		t.Errorf("chain did not resume at block 51 after reopen: %+v", env.inflight)
	}
}

func TestDriverStatsProgression(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 8, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	env.completeAll()
	st := d.Stats()
	if st.Issued != 7 || st.Completed != 7 {
		t.Errorf("issued/completed = %d/%d, want 7/7", st.Issued, st.Completed)
	}
	if st.Restarts != 1 { // the initial unsatisfied request
		t.Errorf("restarts = %d, want 1", st.Restarts)
	}
	if st.ChainStops != 1 {
		t.Errorf("chain stops = %d, want 1", st.ChainStops)
	}
	if st.PredictionSteps == 0 {
		t.Error("no prediction steps recorded")
	}
}

func TestAggressiveSizeZeroFileRejected(t *testing.T) {
	env := newFakeEnv()
	defer func() {
		if recover() == nil {
			t.Error("zero-block file accepted")
		}
	}()
	newDriver(t, NewOBA(), ModeAggressive, 1, 0, env)
}

func TestNegativePredictionOffsetClipped(t *testing.T) {
	// A learned negative interval larger than the current offset must
	// clip to block 0, not go negative.
	env := newFakeEnv()
	m := NewISPPM(1)
	d := newDriver(t, m, ModeOneShot, 0, 100, env)
	seq := []Request{{90, 1}, {60, 1}, {30, 1}} // interval -30
	for i, r := range seq {
		env.inflight = nil
		d.OnUserRequest(r, Tick(i+1), false)
	}
	// Predicted next: offset 0 (clipped from 30-30=0 — in range), then
	// from 0 the next prediction would be -30: entirely outside.
	for _, op := range env.inflight {
		if op.b.Block < 0 {
			t.Errorf("issued negative block %v", op.b)
		}
	}
}

func TestSatisfiedFirstRequestStartsChain(t *testing.T) {
	// Even if the very first request hits the cache (block already
	// there from another file's chain), the driver must start its own
	// chain — stopped=true initially plus satisfied=true exercises the
	// resume branch.
	env := newFakeEnv()
	env.cache[bid(1, 0)] = true
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 10, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, true)
	if len(env.inflight) != 1 {
		t.Fatalf("chain did not start on satisfied first request")
	}
	if env.inflight[0].b != bid(1, 1) {
		t.Errorf("first prefetch %v, want 1:1", env.inflight[0].b)
	}
}

func TestWritesFeedThePredictor(t *testing.T) {
	// The paper's predictors observe reads and writes alike ("whenever
	// a block i is read or written", §2.1). The driver is agnostic:
	// whoever calls OnUserRequest feeds the model. This test documents
	// that a stride learned from write requests predicts reads.
	env := newFakeEnv()
	m := NewISPPM(1)
	d := newDriver(t, m, ModeOneShot, 0, 1000, env)
	for i, r := range []Request{{0, 2}, {10, 2}, {20, 2}, {30, 2}} {
		env.inflight = nil
		d.OnUserRequest(r, Tick(i+1), false) // kind-agnostic
	}
	if len(env.inflight) != 2 || env.inflight[0].b != bid(1, 40) {
		t.Errorf("stride from mixed stream not predicted: %+v", env.inflight)
	}
}

func TestChainSkipsAlreadyPrefetchedRegionAfterRestart(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 100, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	for i := 0; i < 10; i++ {
		env.completeOne() // blocks 1..10 cached
	}
	// Mispredict to 5 (already cached? no: 5 IS cached → satisfied).
	// Jump to 3 (cached, satisfied): chain continues unchanged. Then
	// jump to 200 (mispredict): restart must skip nothing (fresh area).
	d.OnUserRequest(Request{Offset: 3, Size: 1}, 2, true)
	d.OnUserRequest(Request{Offset: 200, Size: 1}, 3, false)
	env.completeAll()
	// All blocks from 201 to 299... bounded by file (100 blocks) —
	// file is 100 blocks so request at 200 is out of range; driver
	// clips: nothing beyond 100 issued.
	for _, b := range env.issued {
		if b.Block >= 100 {
			t.Errorf("issued block %v beyond file end", b)
		}
	}
}
