package core

import (
	"fmt"

	"repro/internal/blockdev"
)

// Mode selects how a predictor is exercised by the Driver.
type Mode int

// Driver modes.
const (
	// ModeOneShot is the paper's non-aggressive use: after every user
	// request, prefetch exactly the predicted next request and stop.
	ModeOneShot Mode = iota
	// ModeAggressive keeps walking the prediction chain, treating each
	// prefetched request as if the user had issued it, until the chain
	// leaves the file or a misprediction resets it (§3.1).
	ModeAggressive
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeOneShot {
		return "one-shot"
	}
	return "aggressive"
}

// Env is what a Driver needs from its host file system: cache
// visibility and the ability to launch a low-priority block fetch.
type Env interface {
	// Cached reports whether the block is already in the cooperative
	// cache (from this driver's point of view: PAFS asks the global
	// directory, xFS each node asks about its own pool, which is what
	// makes xFS prefetching duplicate work on shared files, §4).
	Cached(b blockdev.BlockID) bool
	// Prefetch launches a low-priority fetch of b. fallback reports
	// whether the block was predicted by the cold-start OBA fallback
	// (for the paper's fallback-fraction accounting). cancelled is
	// polled when the backing store would start the operation; done
	// fires at completion (not called when cancelled). Prefetch reports
	// whether the operation was accepted: an environment under
	// backpressure (the runtime's bounded prefetch queue) may refuse,
	// which parks the driver's chain until the next user request.
	Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) (accepted bool)
}

// OutstandingObserver is notified whenever a driver's logical count of
// in-flight prefetches changes. The file systems aggregate the deltas
// per file: under PAFS one driver owns a file machine-wide, so the
// aggregate can never exceed the linear limit; under xFS every node
// runs its own driver and the aggregate exposes how far the per-node
// implementation strays from truly linear prefetching (§4).
type OutstandingObserver interface {
	OutstandingChanged(f blockdev.FileID, delta int)
}

// DriverConfig assembles a per-file prefetch driver.
type DriverConfig struct {
	// Predictor supplies predictions; the driver owns it.
	Predictor Predictor
	// Mode selects one-shot or aggressive operation.
	Mode Mode
	// MaxOutstanding bounds in-flight prefetch operations for this
	// file. 1 is the paper's *linear* throttle (§3.2); 0 means
	// unlimited (the uncontrolled aggressive variant, kept for the
	// ablation benches). Ignored when Degree is set.
	MaxOutstanding int
	// Degree, if non-nil, supplies the outstanding bound dynamically:
	// the driver consults Degree.Allow() before every issue. Nil falls
	// back to the static FixedDegree{K: MaxOutstanding}, which is
	// bit-exact with the historical hardwired throttle.
	Degree DegreePolicy
	// File is the file this driver serves.
	File blockdev.FileID
	// FileBlocks is the file length; predictions are clipped to
	// [0, FileBlocks) and the aggressive chain stops beyond it.
	FileBlocks blockdev.BlockNo
	// Env hosts the driver.
	Env Env
	// MaxDrySteps bounds consecutive chain predictions that yield no
	// uncached block before the chain pauses; it prevents a cyclic,
	// fully cached pattern from spinning forever. Zero means the
	// default of 64.
	MaxDrySteps int
	// Observer, if non-nil, receives every change of the driver's
	// logical outstanding-prefetch count (issue +1, completion -1, and
	// the reset to zero when a chain restarts or stops).
	Observer OutstandingObserver
}

// DriverStats counts driver activity; the experiment layer aggregates
// them into the paper's reported ratios.
type DriverStats struct {
	Issued          uint64 // prefetch operations launched
	FallbackIssued  uint64 // of those, predicted by the OBA fallback
	Completed       uint64 // prefetch operations that finished
	Restarts        uint64 // chain resets after mispredictions
	ChainStops      uint64 // chain reached end of file or went dry
	Rejected        uint64 // prefetches refused by the env (backpressure)
	PredictionSteps uint64 // Predict calls made while walking
	// HighWater is the most prefetches this driver ever had in flight
	// at once; ≤ the degree policy's Cap by construction (exactly ≤ 1
	// under the paper's linear throttle), so it verifies the bound
	// directly.
	HighWater int
}

// pendingBlock is one block awaiting issue from the current predicted
// batch.
type pendingBlock struct {
	no       blockdev.BlockNo
	fallback bool
}

// Driver runs one file's prefetching: it feeds user requests to the
// predictor, maintains the speculative cursor, enforces the linear
// outstanding limit, and restarts the chain on mispredictions.
//
// Liveness note: a predictor whose graph cycles inside the file (for
// example a learned wrap-around back to block 0) keeps an aggressive
// chain alive indefinitely when the cache keeps evicting its work —
// only the cached-block skip and the dry-step guard pause it. The file
// systems bound this the way real ones do: StopChain on close and the
// environment's refusal to prefetch once the run is draining.
type Driver struct {
	cfg         DriverConfig
	degree      DegreePolicy
	cursor      Cursor
	haveCursor  bool
	pending     []pendingBlock
	outstanding int
	gen         uint64
	stopped     bool
	stats       DriverStats
}

// NewDriver validates the configuration and returns a driver.
func NewDriver(cfg DriverConfig) *Driver {
	if cfg.Predictor == nil {
		panic("core: driver needs a predictor")
	}
	if cfg.Env == nil {
		panic("core: driver needs an env")
	}
	if cfg.MaxOutstanding < 0 {
		panic(fmt.Sprintf("core: negative outstanding limit %d", cfg.MaxOutstanding))
	}
	if cfg.FileBlocks <= 0 {
		panic(fmt.Sprintf("core: file %d has %d blocks", cfg.File, cfg.FileBlocks))
	}
	if cfg.MaxDrySteps == 0 {
		cfg.MaxDrySteps = 64
	}
	if cfg.Degree == nil {
		cfg.Degree = &FixedDegree{K: cfg.MaxOutstanding}
	}
	return &Driver{cfg: cfg, degree: cfg.Degree, stopped: true}
}

// Name describes the configured algorithm the way the paper does:
// "OBA", "Ln_Agr_OBA", "IS_PPM:1", "Ln_Agr_IS_PPM:3", "Agr_OBA" (for
// the unlimited variant), etc.
func (d *Driver) Name() string {
	base := d.cfg.Predictor.Name()
	if d.cfg.Mode == ModeOneShot {
		return base
	}
	if _, ok := d.degree.(*AdaptiveFDP); ok {
		return "Ad_Agr_" + base
	}
	if d.degree.Cap() == 1 {
		return "Ln_Agr_" + base
	}
	return "Agr_" + base
}

// Stats returns a snapshot of the driver counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// Outstanding returns the number of in-flight prefetches for the
// current chain generation.
func (d *Driver) Outstanding() int { return d.outstanding }

// OnUserRequest feeds a real request to the driver. satisfied reports
// whether every requested block was already cached when the request
// arrived — the paper's criterion for "the system prediction was
// correct and there is no need to modify the prefetching path" (§3.1).
func (d *Driver) OnUserRequest(r Request, now Tick, satisfied bool) {
	real := d.cfg.Predictor.Observe(r, now)
	switch d.cfg.Mode {
	case ModeOneShot:
		// Predict exactly the next request from the real position and
		// queue its blocks, replacing any batch not yet issued.
		d.pending = d.pending[:0]
		d.cursor = real
		d.haveCursor = true
		pred, _, ok := d.cfg.Predictor.Predict(real)
		d.stats.PredictionSteps++
		if ok {
			d.enqueue(pred)
		}
	case ModeAggressive:
		if !satisfied {
			// Misprediction: reset the chain to the real stream
			// position and restart from the last requested block.
			d.restartFrom(real)
		} else if d.stopped || !d.haveCursor {
			// Correctly predicted but the chain had stopped (end of
			// file or dry); resume from the real position.
			d.cursor = real
			d.haveCursor = true
			d.stopped = false
		}
		// Otherwise: leave the running chain alone ("continues
		// bringing new blocks as if the user had not requested any").
	}
	d.pump()
}

// StopChain halts prefetching until the next user request: the file
// was closed by its (last) user. Queued prefetch operations are
// orphaned via a generation bump; the learned model is kept, so a
// re-open resumes with everything the predictor knows.
func (d *Driver) StopChain() {
	d.pending = d.pending[:0]
	d.gen++
	d.changeOutstanding(-d.outstanding)
	d.stopped = true
	d.haveCursor = false
}

func (d *Driver) restartFrom(real Cursor) {
	d.cursor = real
	d.haveCursor = true
	d.pending = d.pending[:0]
	d.gen++
	d.changeOutstanding(-d.outstanding)
	d.stopped = false
	d.stats.Restarts++
}

// changeOutstanding adjusts the logical in-flight count, maintains the
// high-water mark, and notifies the observer.
func (d *Driver) changeOutstanding(delta int) {
	if delta == 0 {
		return
	}
	d.outstanding += delta
	if d.outstanding > d.stats.HighWater {
		d.stats.HighWater = d.outstanding
	}
	if d.cfg.Observer != nil {
		d.cfg.Observer.OutstandingChanged(d.cfg.File, delta)
	}
}

// enqueue clips a predicted request to the file and queues its blocks.
func (d *Driver) enqueue(p Prediction) (added bool) {
	start, end := p.Offset, p.End()
	if start < 0 {
		start = 0
	}
	if end > d.cfg.FileBlocks {
		end = d.cfg.FileBlocks
	}
	for b := start; b < end; b++ {
		blk := blockdev.BlockID{File: d.cfg.File, Block: b}
		if d.cfg.Env.Cached(blk) {
			continue
		}
		d.pending = append(d.pending, pendingBlock{no: b, fallback: p.Fallback})
		added = true
	}
	return added
}

// inFile reports whether any part of the prediction lies inside the
// file; a fully outside prediction ends the aggressive chain.
func (d *Driver) inFile(p Prediction) bool {
	return p.End() > 0 && p.Offset < d.cfg.FileBlocks
}

// pump issues pending blocks up to the policy's current window,
// walking the chain for more work when aggressive and the batch runs
// dry. The window is re-read every iteration: an adaptive policy may
// widen or clamp between issues, and a clamp simply stops further
// issues — blocks already in flight are left to complete.
func (d *Driver) pump() {
	for lim := d.degree.Allow(); lim == 0 || d.outstanding < lim; lim = d.degree.Allow() {
		if len(d.pending) == 0 && !d.refill() {
			return
		}
		pb := d.pending[0]
		d.pending = d.pending[1:]
		blk := blockdev.BlockID{File: d.cfg.File, Block: pb.no}
		if d.cfg.Env.Cached(blk) {
			continue // raced in via a demand fetch since enqueue
		}
		if !d.issue(blk, pb.fallback) {
			// Backpressure: the env refused the operation. Park the
			// chain; OnUserRequest resumes it once the queue drains
			// enough for the next satisfied request to restart it.
			d.stopped = true
			return
		}
	}
}

// refill walks the prediction chain until it finds uncached work.
// It returns false when there is nothing to issue now.
func (d *Driver) refill() bool {
	if d.cfg.Mode != ModeAggressive || d.stopped || !d.haveCursor {
		return false
	}
	dry := 0
	for {
		pred, next, ok := d.cfg.Predictor.Predict(d.cursor)
		d.stats.PredictionSteps++
		if !ok || !d.inFile(pred) {
			d.stopped = true
			d.stats.ChainStops++
			return false
		}
		d.cursor = next
		if d.enqueue(pred) {
			return true
		}
		dry++
		if dry >= d.cfg.MaxDrySteps {
			d.stopped = true
			d.stats.ChainStops++
			return false
		}
	}
}

// issue launches one prefetch with generation-stamped callbacks so a
// chain restart orphans, and the disk queue drops, stale operations.
// It reports whether the environment accepted the operation.
func (d *Driver) issue(blk blockdev.BlockID, fallback bool) bool {
	gen := d.gen
	d.changeOutstanding(1)
	// Cancellation keys on the generation only: a same-generation
	// operation always runs to completion so the outstanding count
	// stays consistent (stale generations reset it in restartFrom).
	//
	// release undoes this operation's +1 exactly once. An operation
	// from an abandoned chain (the generation moved under it) finds
	// its slot already reclaimed by StopChain/restartFrom's bulk
	// reset, and a completion that somehow fires twice hits the
	// latch — under a K>1 window a stray second decrement would
	// silently free a slot and let the window overshoot its bound.
	released := false
	release := func() bool {
		if released || d.gen != gen {
			return false
		}
		released = true
		d.changeOutstanding(-1)
		return true
	}
	accepted := d.cfg.Env.Prefetch(blk, fallback,
		func() bool { return d.gen != gen },
		func() {
			if !release() {
				return // abandoned chain or duplicate completion
			}
			d.stats.Completed++
			d.pump()
		})
	if !accepted {
		release()
		d.stats.Rejected++
		if bp, ok := d.degree.(backpressureAware); ok {
			bp.OnBackpressure()
		}
		return false
	}
	d.stats.Issued++
	if fallback {
		d.stats.FallbackIssued++
	}
	return true
}
