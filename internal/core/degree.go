package core

import (
	"fmt"
	"sync"

	"repro/internal/blockdev"
)

// DegreePolicy decides how many prefetch operations a single file may
// have in flight at once. The paper hardwires this to one — the
// *linear* throttle of §3.2 — but production prefetchers modulate the
// degree from measured accuracy and timeliness (GHB/FDP-style
// feedback). Extracting the decision into a policy lets the same
// driver run bit-exact paper baselines and feedback-controlled
// variants side by side.
//
// Allow is read by the driver before every issue; the feedback hooks
// are fed by the host file system from its prefetched-block lifecycle:
//
//	OnTimely — a prefetched block was demanded after it arrived
//	OnLate   — a demand read had to wait on an in-flight prefetch
//	OnWasted — a prefetched block was evicted without ever being used
//	OnUnused — a prefetched block was still unread at teardown
//
// Implementations must be safe for concurrent use: the runtime calls
// Allow under the per-file driver mutex but delivers feedback from
// whatever goroutine observed the event.
type DegreePolicy interface {
	// Name labels the policy for logs and snapshots.
	Name() string
	// Allow returns the current outstanding-prefetch bound for the
	// file; 0 means unlimited. It never returns a negative value.
	Allow() int
	// Cap returns the largest value Allow can ever return; 0 means
	// unlimited. Auditors (the chaos ledger) check high-water marks
	// against Cap rather than the instantaneous Allow.
	Cap() int

	OnTimely()
	OnLate()
	OnWasted()
	OnUnused()
}

// backpressureAware is implemented by policies that want to know when
// the environment refused a prefetch (the runtime's bounded queue was
// full). The driver probes for it on every rejection.
type backpressureAware interface {
	OnBackpressure()
}

// FixedDegree is the static policy: Allow is always K. K=1 is the
// paper's strict linear throttle, bit-exact with the historical
// hardwired behavior; K=0 is the unlimited aggressive variant kept
// for the ablation benches. Feedback is ignored.
type FixedDegree struct {
	K int
}

// StrictLinear returns the paper's baseline policy: exactly one
// outstanding prefetch per file, feedback ignored.
func StrictLinear() *FixedDegree { return &FixedDegree{K: 1} }

// Name implements DegreePolicy.
func (p *FixedDegree) Name() string {
	switch p.K {
	case 0:
		return "unlimited"
	case 1:
		return "strict-linear"
	}
	return fmt.Sprintf("fixed:%d", p.K)
}

// Allow implements DegreePolicy.
func (p *FixedDegree) Allow() int { return p.K }

// Cap implements DegreePolicy.
func (p *FixedDegree) Cap() int { return p.K }

// OnTimely implements DegreePolicy (no-op).
func (p *FixedDegree) OnTimely() {}

// OnLate implements DegreePolicy (no-op).
func (p *FixedDegree) OnLate() {}

// OnWasted implements DegreePolicy (no-op).
func (p *FixedDegree) OnWasted() {}

// OnUnused implements DegreePolicy (no-op).
func (p *FixedDegree) OnUnused() {}

// DefaultAdaptiveCap is the hard ceiling an AdaptiveFDP window may
// reach unless the spec overrides it.
const DefaultAdaptiveCap = 8

// AdaptiveFDPConfig tunes the feedback controller. Zero values take
// the defaults noted on each field.
type AdaptiveFDPConfig struct {
	// Cap is the hard maximum window; the controller never exceeds it.
	// Default DefaultAdaptiveCap. Must be >= 1.
	Cap int
	// Window is how many feedback events accumulate before the
	// controller re-evaluates. Default 32.
	Window int
	// AccuracyHigh is the useful fraction (timely+late over all
	// resolved prefetches) above which widening is considered.
	// Default 0.75.
	AccuracyHigh float64
	// AccuracyLow is the useful fraction below which the window clamps
	// straight back to linear. Default 0.40.
	AccuracyLow float64
	// LateHigh is the late fraction above which the file counts as
	// timely-starved: predictions are right but arrive behind the
	// reader, so a deeper window would hide more latency. Default 0.10.
	LateHigh float64
	// Hysteresis is how many consecutive widen (or narrow) verdicts
	// must agree before the window actually moves, so a single noisy
	// evaluation can't flap the degree. Default 2.
	Hysteresis int
}

func (c *AdaptiveFDPConfig) fill() {
	if c.Cap <= 0 {
		c.Cap = DefaultAdaptiveCap
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.AccuracyHigh == 0 {
		c.AccuracyHigh = 0.75
	}
	if c.AccuracyLow == 0 {
		c.AccuracyLow = 0.40
	}
	if c.LateHigh == 0 {
		c.LateHigh = 0.10
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
}

// AdaptiveFDP is a per-file feedback-directed degree controller in the
// spirit of FDP's conservative→aggressive state machine: every Window
// feedback events it computes the useful fraction (accuracy) and the
// late fraction of resolved prefetches, then
//
//   - widens the window by one step (up to Cap) when predictions are
//     accurate *and* the file is timely-starved — demand reads keep
//     catching prefetches in flight, so depth would hide latency;
//   - narrows by one step when accuracy is high but nothing is late —
//     the current depth already covers the read-ahead distance;
//   - clamps straight back to linear (degree 1) when accuracy falls
//     below AccuracyLow — the predictor is wrong, waste is rising, and
//     the paper's throttle is the safe floor.
//
// Both gradual moves are gated by Hysteresis consecutive agreeing
// verdicts; the clamp is immediate. A backpressure signal from the
// environment also halves the window at once: the prefetch queue is
// full, so depth is only creating rejects.
//
// The window always stays within [1, Cap]. The zero value is not
// usable; construct with NewAdaptiveFDP.
type AdaptiveFDP struct {
	cfg AdaptiveFDPConfig

	mu          sync.Mutex
	degree      int
	timely      uint64 // events in the current window
	late        uint64
	wasted      uint64
	unused      uint64
	widenStreak int
	narrowStreak int
	stats       AdaptiveStats
}

// AdaptiveStats is a snapshot of one controller's activity.
type AdaptiveStats struct {
	Degree       int     // current window
	Cap          int     // hard ceiling
	Evals        uint64  // completed evaluation windows
	Widens       uint64  // +1 steps taken
	Narrows      uint64  // -1 steps taken
	Clamps       uint64  // hard resets to linear
	Backpressure uint64  // env-refusal signals received
	Timely       uint64  // lifetime feedback totals
	Late         uint64
	Wasted       uint64
	Unused       uint64
	LastAccuracy float64 // useful fraction at the last evaluation
	LastLateRate float64 // late fraction at the last evaluation
}

// Accuracy returns the lifetime useful fraction of resolved
// prefetches, or 0 when nothing has resolved yet.
func (s AdaptiveStats) Accuracy() float64 {
	total := s.Timely + s.Late + s.Wasted + s.Unused
	if total == 0 {
		return 0
	}
	return float64(s.Timely+s.Late) / float64(total)
}

// NewAdaptiveFDP builds a controller starting at degree 1 — linear
// until the feedback earns more.
func NewAdaptiveFDP(cfg AdaptiveFDPConfig) *AdaptiveFDP {
	cfg.fill()
	return &AdaptiveFDP{cfg: cfg, degree: 1}
}

// Name implements DegreePolicy.
func (p *AdaptiveFDP) Name() string { return fmt.Sprintf("adaptive-fdp:%d", p.cfg.Cap) }

// Allow implements DegreePolicy.
func (p *AdaptiveFDP) Allow() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degree
}

// Cap implements DegreePolicy.
func (p *AdaptiveFDP) Cap() int { return p.cfg.Cap }

// OnTimely implements DegreePolicy.
func (p *AdaptiveFDP) OnTimely() { p.feed(&p.timely, &p.stats.Timely) }

// OnLate implements DegreePolicy.
func (p *AdaptiveFDP) OnLate() { p.feed(&p.late, &p.stats.Late) }

// OnWasted implements DegreePolicy.
func (p *AdaptiveFDP) OnWasted() { p.feed(&p.wasted, &p.stats.Wasted) }

// OnUnused implements DegreePolicy.
func (p *AdaptiveFDP) OnUnused() { p.feed(&p.unused, &p.stats.Unused) }

// OnBackpressure reacts to an env refusal: the prefetch queue is full,
// so halve the window immediately and make the controller re-earn the
// depth. Implements the driver's backpressureAware probe.
func (p *AdaptiveFDP) OnBackpressure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Backpressure++
	if half := p.degree / 2; half >= 1 {
		p.degree = half
	}
	p.widenStreak, p.narrowStreak = 0, 0
}

// Stats returns a snapshot of the controller.
func (p *AdaptiveFDP) Stats() AdaptiveStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Degree = p.degree
	s.Cap = p.cfg.Cap
	return s
}

func (p *AdaptiveFDP) feed(windowCtr, lifeCtr *uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	*windowCtr++
	*lifeCtr++
	if p.timely+p.late+p.wasted+p.unused >= uint64(p.cfg.Window) {
		p.evaluate()
	}
}

// evaluate runs one controller step over the accumulated window.
// Caller holds p.mu.
func (p *AdaptiveFDP) evaluate() {
	total := float64(p.timely + p.late + p.wasted + p.unused)
	accuracy := float64(p.timely+p.late) / total
	lateRate := float64(p.late) / total
	p.timely, p.late, p.wasted, p.unused = 0, 0, 0, 0
	p.stats.Evals++
	p.stats.LastAccuracy, p.stats.LastLateRate = accuracy, lateRate

	switch {
	case accuracy < p.cfg.AccuracyLow:
		// The predictor is missing; every extra slot is another wasted
		// block polluting the cache. Back to the paper's throttle now.
		if p.degree != 1 {
			p.stats.Clamps++
		}
		p.degree = 1
		p.widenStreak, p.narrowStreak = 0, 0
	case accuracy >= p.cfg.AccuracyHigh && lateRate >= p.cfg.LateHigh:
		p.narrowStreak = 0
		if p.degree >= p.cfg.Cap {
			p.widenStreak = 0
			return
		}
		if p.widenStreak++; p.widenStreak >= p.cfg.Hysteresis {
			p.degree++
			p.stats.Widens++
			p.widenStreak = 0
		}
	case accuracy >= p.cfg.AccuracyHigh && lateRate == 0 && p.degree > 1:
		// Everything useful arrives ahead of the reader: the window is
		// at least deep enough, so probe downward to shed speculation.
		p.widenStreak = 0
		if p.narrowStreak++; p.narrowStreak >= p.cfg.Hysteresis {
			p.degree--
			p.stats.Narrows++
			p.narrowStreak = 0
		}
	default:
		p.widenStreak, p.narrowStreak = 0, 0
	}
}

// DegreeSet hands out one DegreePolicy per file, built by a factory.
// The simulator tier uses it to route the timely/late/wasted feedback
// it already collects (fscommon's prefetched-block lifecycle) to the
// controller of the file that issued the prefetch. It is not
// goroutine-safe; the sim runs on one event loop. The runtime engine
// keeps its policies on its own fileState instead.
type DegreeSet struct {
	factory  func() DegreePolicy
	policies map[blockdev.FileID]DegreePolicy
}

// NewDegreeSet builds a per-file policy registry for the spec.
func NewDegreeSet(spec AlgSpec) *DegreeSet {
	return &DegreeSet{
		factory:  spec.NewDegreePolicy,
		policies: make(map[blockdev.FileID]DegreePolicy),
	}
}

// For returns the file's policy, creating it on first use.
func (s *DegreeSet) For(f blockdev.FileID) DegreePolicy {
	p, ok := s.policies[f]
	if !ok {
		p = s.factory()
		s.policies[f] = p
	}
	return p
}

// OnTimely routes a timely-use event to the file's controller.
func (s *DegreeSet) OnTimely(f blockdev.FileID) { s.For(f).OnTimely() }

// OnLate routes a demand-hit-in-flight event to the file's controller.
func (s *DegreeSet) OnLate(f blockdev.FileID) { s.For(f).OnLate() }

// OnWasted routes an unused-eviction event to the file's controller.
func (s *DegreeSet) OnWasted(f blockdev.FileID) { s.For(f).OnWasted() }

// OnUnused routes a still-unread-at-teardown event to the controller.
func (s *DegreeSet) OnUnused(f blockdev.FileID) { s.For(f).OnUnused() }

// MaxDegree returns the deepest window any file reached, and 1 when no
// file has a policy yet (every driver starts linear).
func (s *DegreeSet) MaxDegree() int {
	max := 1
	for _, p := range s.policies {
		if a, ok := p.(*AdaptiveFDP); ok {
			if st := a.Stats(); st.Degree > max {
				max = st.Degree
			}
		}
	}
	return max
}
