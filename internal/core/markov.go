package core

import (
	"repro/internal/blockdev"
)

// Markov is a Pangloss-style Markov-chain predictor (Papaphilippou et
// al.): a compact, row-normalized transition probability matrix over
// request start blocks, predicted by *most-probable successor* chains
// instead of the paper's most-recent links.
//
// It differs from the two PPM family members already in the package on
// exactly the axes Pangloss argues for:
//
//   - BlockPPM keeps raw lifetime counts over an order-j history of
//     individual blocks; Markov is first-order over request starts,
//     and each row is a bounded candidate set whose counts age (halve)
//     whenever the row total passes AgeThreshold, so the matrix tracks
//     the *current* probability distribution, not the all-history one.
//   - IS_PPM follows the single most-recent link; Markov ranks a row's
//     candidates by estimated probability and only predicts when the
//     winner's share of the row clears MinProb — a transition that is
//     merely the latest is not worth prefetching if the row says it is
//     a coin flip.
//
// Prediction chains walk successive most-probable transitions up to
// MaxChain steps, mirroring Pangloss's limited-depth chained lookup.
// Memory is bounded by MaxRows rows of at most RowWidth candidates,
// evicting the least-recently-updated row when full.
type Markov struct {
	cfg MarkovConfig

	seq     Tick
	started bool
	last    blockdev.BlockNo

	rows map[blockdev.BlockNo]*markovRow
}

// MarkovConfig bounds the matrix. The zero value selects the defaults.
type MarkovConfig struct {
	// MaxRows bounds the number of states (request start blocks) the
	// matrix keeps; RowWidth bounds the candidate successors per state.
	// Defaults 4096 and 8.
	MaxRows  int
	RowWidth int
	// AgeThreshold: when a row's total count reaches it, every count
	// in the row is halved (Pangloss's aging), so stale transitions
	// decay instead of pinning the argmax forever. Default 32.
	AgeThreshold uint32
	// MinProb is the minimum estimated probability (candidate count /
	// row total) a successor needs to be predicted, in percent.
	// Default 25.
	MinProbPct uint32
	// MaxChain bounds the speculative chain depth per real request.
	// Default 8.
	MaxChain int
}

// withDefaults fills unset fields.
func (c MarkovConfig) withDefaults() MarkovConfig {
	if c.MaxRows <= 0 {
		c.MaxRows = 4096
	}
	if c.RowWidth <= 0 {
		c.RowWidth = 8
	}
	if c.AgeThreshold == 0 {
		c.AgeThreshold = 32
	}
	if c.MinProbPct == 0 {
		c.MinProbPct = 25
	}
	if c.MaxChain <= 0 {
		c.MaxChain = 8
	}
	return c
}

// markovCand is one candidate successor with its transition count.
type markovCand struct {
	block blockdev.BlockNo
	size  int32
	count uint32
}

// markovRow is one row of the probability matrix: a bounded candidate
// set plus the row total the probabilities normalize against. total
// includes displaced candidates' residue, so probabilities stay
// honest when the row is under pressure.
type markovRow struct {
	cands      []markovCand
	total      uint32
	lastUpdate Tick
}

// markovCursor is a (real or speculative) position: the last block of
// the walk plus the chain depth.
type markovCursor struct {
	block blockdev.BlockNo
	depth int
}

// NewMarkov returns a predictor with the default configuration.
func NewMarkov() *Markov { return NewMarkovConfigured(MarkovConfig{}) }

// NewMarkovConfigured returns a predictor with explicit bounds.
func NewMarkovConfigured(cfg MarkovConfig) *Markov {
	return &Markov{cfg: cfg.withDefaults(), rows: make(map[blockdev.BlockNo]*markovRow)}
}

// Name identifies the algorithm.
func (*Markov) Name() string { return "Markov" }

// RowCount returns the number of matrix rows currently held.
func (m *Markov) RowCount() int { return len(m.rows) }

// MaxRows returns the configured row bound (for conformance checks).
func (m *Markov) MaxRows() int { return m.cfg.MaxRows }

// Observe records the transition last -> r.Offset.
func (m *Markov) Observe(r Request, _ Tick) Cursor {
	m.seq++
	if m.started && m.last != r.Offset {
		m.bump(m.last, r.Offset, r.Size, m.seq)
	}
	m.started = true
	m.last = r.Offset
	return markovCursor{block: r.Offset}
}

// bump counts one observed transition and ages the row when due.
func (m *Markov) bump(src, dst blockdev.BlockNo, size int32, now Tick) {
	row := m.rows[src]
	if row == nil {
		if len(m.rows) >= m.cfg.MaxRows {
			m.evictOldestRow()
		}
		row = &markovRow{}
		m.rows[src] = row
	}
	row.lastUpdate = now
	row.total++
	found := false
	for i := range row.cands {
		if row.cands[i].block == dst {
			row.cands[i].count++
			row.cands[i].size = size
			found = true
			break
		}
	}
	if !found {
		if len(row.cands) < m.cfg.RowWidth {
			row.cands = append(row.cands, markovCand{block: dst, size: size, count: 1})
		} else {
			// Full row: decay the weakest candidate; once it hits zero,
			// the newcomer takes the slot. Its count restarts at 1 while
			// the row total remembers the history, which *underestimates*
			// the newcomer's probability — the safe direction for a
			// threshold-gated prefetcher.
			weakest := 0
			for i := 1; i < len(row.cands); i++ {
				if row.cands[i].count < row.cands[weakest].count {
					weakest = i
				}
			}
			if row.cands[weakest].count <= 1 {
				row.cands[weakest] = markovCand{block: dst, size: size, count: 1}
			} else {
				row.cands[weakest].count--
			}
		}
	}
	if row.total >= m.cfg.AgeThreshold {
		m.age(row)
	}
}

// age halves every count in the row (and the total), dropping
// candidates that decay to zero.
func (m *Markov) age(row *markovRow) {
	out := row.cands[:0]
	var total uint32
	for _, c := range row.cands {
		c.count /= 2
		if c.count > 0 {
			total += c.count
			out = append(out, c)
		}
	}
	row.cands = out
	// Keep the displaced-candidate residue proportionally.
	row.total /= 2
	if row.total < total {
		row.total = total
	}
}

// evictOldestRow discards the least recently updated row.
func (m *Markov) evictOldestRow() {
	var victim blockdev.BlockNo
	var at Tick
	first := true
	for b, row := range m.rows {
		if first || row.lastUpdate < at {
			victim, at, first = b, row.lastUpdate, false
		}
	}
	if !first {
		delete(m.rows, victim)
	}
}

// Predict returns the most probable successor of the cursor's block if
// its estimated probability clears the threshold.
func (m *Markov) Predict(c Cursor) (Prediction, Cursor, bool) {
	cur, ok := c.(markovCursor)
	if !ok {
		return Prediction{}, nil, false
	}
	if cur.depth >= m.cfg.MaxChain {
		return Prediction{}, cur, false
	}
	row := m.rows[cur.block]
	if row == nil || row.total == 0 {
		return Prediction{}, cur, false
	}
	best := -1
	for i := range row.cands {
		if best < 0 || row.cands[i].count > row.cands[best].count {
			best = i
		}
	}
	if best < 0 {
		return Prediction{}, cur, false
	}
	cand := row.cands[best]
	if uint64(cand.count)*100 < uint64(row.total)*uint64(m.cfg.MinProbPct) {
		return Prediction{}, cur, false
	}
	p := Prediction{Request: Request{Offset: cand.block, Size: cand.size}}
	return p, markovCursor{block: cand.block, depth: cur.depth + 1}, true
}
