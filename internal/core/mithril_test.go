package core

import (
	"testing"

	"repro/internal/blockdev"
)

// observe feeds one request start to the predictor and returns the
// cursor, keeping the test tables readable.
func observe(p Predictor, block blockdev.BlockNo) Cursor {
	return p.Observe(Request{Offset: block, Size: 1}, 0)
}

// TestMithrilLearnsInterleavedPair is the design-point test: a
// recurring pair (10 -> 20) buried in unrelated traffic. An MRU-chain
// predictor keyed on exact history never re-matches; the miner must
// associate the pair as long as both land within the window.
func TestMithrilLearnsInterleavedPair(t *testing.T) {
	m := NewMithril()
	noise := blockdev.BlockNo(100)
	var cur Cursor
	for round := 0; round < 4; round++ {
		observe(m, 10)
		observe(m, noise) // different noise each round
		noise++
		cur = observe(m, 20)
		_ = cur
		observe(m, noise)
		noise++
	}
	cur = observe(m, 10)
	p, next, ok := m.Predict(cur)
	if !ok {
		t.Fatal("no prediction after repeated co-occurrence")
	}
	if p.Request.Offset != 20 {
		t.Fatalf("predicted block %d, want 20", p.Request.Offset)
	}
	if next == nil {
		t.Fatal("nil advanced cursor")
	}
}

// TestMithrilMinSupport: one chance co-occurrence is noise and must
// not predict; MinSupport re-occurrences are signal.
func TestMithrilMinSupport(t *testing.T) {
	m := NewMithrilConfigured(MithrilConfig{MinSupport: 5})
	observe(m, 1)
	cur := observe(m, 2) // weight 2 (short window) < 5
	_ = cur
	cur = observe(m, 1)
	if _, _, ok := m.Predict(cur); ok {
		t.Fatal("predicted from a single co-occurrence")
	}
	// Further confirmations push the pair past the threshold.
	observe(m, 2)
	observe(m, 1)
	cur = observe(m, 2)
	_ = cur
	cur = observe(m, 1)
	p, _, ok := m.Predict(cur)
	if !ok || p.Request.Offset != 2 {
		t.Fatalf("want prediction of block 2 after support builds, got ok=%v p=%+v", ok, p)
	}
}

// TestMithrilRowBound: the association table must never exceed
// MaxRows however many distinct blocks stream past.
func TestMithrilRowBound(t *testing.T) {
	m := NewMithrilConfigured(MithrilConfig{MaxRows: 8})
	for b := blockdev.BlockNo(0); b < 1000; b++ {
		observe(m, b)
	}
	if m.RowCount() > m.MaxRows() {
		t.Fatalf("RowCount %d exceeds MaxRows %d", m.RowCount(), m.MaxRows())
	}
	if m.MaxRows() != 8 {
		t.Fatalf("MaxRows = %d, want 8", m.MaxRows())
	}
}

// TestMithrilChainDepth: speculative chains must stop at MaxChain even
// over a strongly-associated cycle (1 -> 2 -> 1 -> ...), so an
// aggressive driver cannot spin forever.
func TestMithrilChainDepth(t *testing.T) {
	m := NewMithrilConfigured(MithrilConfig{MaxChain: 3})
	var cur Cursor
	for i := 0; i < 16; i++ {
		observe(m, 1)
		cur = observe(m, 2)
	}
	cur = observe(m, 1)
	steps := 0
	for {
		_, next, ok := m.Predict(cur)
		if !ok {
			break
		}
		cur = next
		steps++
		if steps > 3 {
			t.Fatalf("chain ran %d steps, cap is 3", steps)
		}
	}
	if steps != 3 {
		t.Fatalf("chain length %d, want exactly MaxChain=3 over a cycle", steps)
	}
}

// TestMithrilSelfLoopsIgnored: a block re-requested back to back must
// not become its own successor.
func TestMithrilSelfLoopsIgnored(t *testing.T) {
	m := NewMithril()
	var cur Cursor
	for i := 0; i < 32; i++ {
		cur = observe(m, 7)
	}
	if _, _, ok := m.Predict(cur); ok {
		t.Fatal("self-loop predicted")
	}
}

// TestMithrilForeignCursor: a cursor from another predictor type must
// be rejected, not crash.
func TestMithrilForeignCursor(t *testing.T) {
	m := NewMithril()
	if _, _, ok := m.Predict("bogus"); ok {
		t.Fatal("predicted from a foreign cursor")
	}
}

// TestMithrilRowWidthDisplacement: a row under pressure keeps its
// heavy hitters; a persistently re-confirmed newcomer displaces the
// weakest candidate rather than growing the row.
func TestMithrilRowWidthDisplacement(t *testing.T) {
	m := NewMithrilConfigured(MithrilConfig{RowWidth: 2, ShortWindow: 1, LongWindow: 1, MinSupport: 2})
	// Strong pair 1 -> 2.
	for i := 0; i < 8; i++ {
		observe(m, 1)
		observe(m, 2)
	}
	// Burst of one-off successors; the row must stay width 2 and the
	// strong pair must survive the churn.
	for b := blockdev.BlockNo(50); b < 60; b++ {
		observe(m, 1)
		observe(m, b)
	}
	row := m.rows[1]
	if row == nil {
		t.Fatal("row for block 1 evicted")
	}
	if len(row.cands) > 2 {
		t.Fatalf("row width %d exceeds bound 2", len(row.cands))
	}
	cur := observe(m, 1)
	p, _, ok := m.Predict(cur)
	if !ok || p.Request.Offset != 2 {
		t.Fatalf("heavy hitter lost under churn: ok=%v p=%+v", ok, p)
	}
}
