package core

import (
	"fmt"

	"repro/internal/blockdev"
)

// BlockPPM is the original Vitter & Krishnan prediction-by-partial-
// match baseline, at block granularity: the graph's nodes are the last
// j *block numbers* accessed (not offset intervals), and prediction
// follows the most-traversed link, as in their paper. The paper's §2.2
// derives IS_PPM from it and argues two shortcomings for file
// prefetching, both of which this implementation makes measurable:
//
//   - a block must have been accessed once before it can ever be
//     predicted, so regular patterns over fresh data predict nothing
//     (IS_PPM extrapolates intervals instead);
//   - it predicts one block at a time, never a request size.
//
// It is provided as a related-work baseline for benchmarks and the
// offline evaluator; the paper's figures do not include it.
type BlockPPM struct {
	order    int
	maxNodes int
	nodes    map[blockKey]*blockNode

	started bool
	hist    blockKey
}

// blockKey is the last j accessed block numbers, most recent last.
type blockKey struct {
	n int8
	b [MaxOrder]blockdev.BlockNo
}

func (k blockKey) shift(b blockdev.BlockNo, order int) blockKey {
	if int(k.n) < order {
		k.b[k.n] = b
		k.n++
		return k
	}
	copy(k.b[:order-1], k.b[1:order])
	k.b[order-1] = b
	return k
}

func (k blockKey) full(order int) bool { return int(k.n) >= order }

// blockNode counts successors of one history.
type blockNode struct {
	counts   map[blockdev.BlockNo]uint32
	top      blockdev.BlockNo
	topCount uint32
	lastUse  Tick
}

// blockppmCursor is a speculative position: the history window.
type blockppmCursor struct {
	hist blockKey
}

// NewBlockPPM returns an order-j block-granularity PPM predictor. It
// panics unless 1 <= order <= MaxOrder.
func NewBlockPPM(order int) *BlockPPM {
	if order < 1 || order > MaxOrder {
		panic(fmt.Sprintf("core: BlockPPM order %d outside [1,%d]", order, MaxOrder))
	}
	return &BlockPPM{order: order, maxNodes: DefaultMaxNodes, nodes: make(map[blockKey]*blockNode)}
}

// Name identifies the algorithm, e.g. "BlockPPM:1".
func (m *BlockPPM) Name() string { return fmt.Sprintf("BlockPPM:%d", m.order) }

// Order returns the Markov order.
func (m *BlockPPM) Order() int { return m.order }

// NodeCount returns the number of graph nodes.
func (m *BlockPPM) NodeCount() int { return len(m.nodes) }

// Observe records the blocks of a real request, one by one, as the
// original paging-oriented algorithm would see them.
func (m *BlockPPM) Observe(r Request, now Tick) Cursor {
	for b := r.Offset; b < r.End(); b++ {
		if m.started && m.hist.full(m.order) {
			nd := m.getOrCreate(m.hist, now)
			nd.lastUse = now
			nd.counts[b]++
			if c := nd.counts[b]; c > nd.topCount {
				nd.top = b
				nd.topCount = c
			}
		}
		m.hist = m.hist.shift(b, m.order)
		m.started = true
	}
	return blockppmCursor{hist: m.hist}
}

func (m *BlockPPM) getOrCreate(k blockKey, now Tick) *blockNode {
	if nd, ok := m.nodes[k]; ok {
		return nd
	}
	if len(m.nodes) >= m.maxNodes {
		m.evictOldest()
	}
	nd := &blockNode{counts: make(map[blockdev.BlockNo]uint32), lastUse: now}
	m.nodes[k] = nd
	return nd
}

func (m *BlockPPM) evictOldest() {
	var victim blockKey
	var at Tick
	first := true
	for k, nd := range m.nodes {
		if first || nd.lastUse < at {
			victim, at, first = k, nd.lastUse, false
		}
	}
	if !first {
		delete(m.nodes, victim)
	}
}

// Predict returns the most frequent successor of the cursor's history,
// always a single block (the original algorithm prefetches one page).
// There is no fallback: unseen histories predict nothing — exactly the
// cold-start weakness IS_PPM's interval model removes.
func (m *BlockPPM) Predict(c Cursor) (Prediction, Cursor, bool) {
	cur, ok := c.(blockppmCursor)
	if !ok {
		return Prediction{}, nil, false
	}
	if !cur.hist.full(m.order) {
		return Prediction{}, cur, false
	}
	nd, found := m.nodes[cur.hist]
	if !found || nd.topCount == 0 {
		return Prediction{}, cur, false
	}
	p := Prediction{Request: Request{Offset: nd.top, Size: 1}}
	return p, blockppmCursor{hist: cur.hist.shift(nd.top, m.order)}, true
}
