package core

import (
	"fmt"

	"repro/internal/blockdev"
)

// MaxOrder bounds the Markov order of IS_PPM predictors; the paper
// evaluates orders 1 and 3, and the fixed bound keeps history keys
// comparable (array-valued) and allocation-free.
const MaxOrder = 8

// DefaultMaxNodes bounds one file's pattern graph; when exceeded, the
// least-recently-updated node is discarded. Real access patterns in
// both workloads need far fewer nodes.
const DefaultMaxNodes = 4096

// pair is one element of the modelled access stream: the offset
// interval from the previous request (in blocks, may be negative) and
// the request size (in blocks).
type pair struct {
	interval int32
	size     int32
}

// histKey identifies a graph node: the last `n` (interval, size) pairs
// of the stream, most recent last. It is a value type usable as a map
// key.
type histKey struct {
	n int8
	p [MaxOrder]pair
}

// shift returns the key advanced by one more pair, dropping the oldest
// when the window is full.
func (k histKey) shift(pr pair, order int) histKey {
	if int(k.n) < order {
		k.p[k.n] = pr
		k.n++
		return k
	}
	copy(k.p[:order-1], k.p[1:order])
	k.p[order-1] = pr
	return k
}

// full reports whether the key holds a complete order-length history.
func (k histKey) full(order int) bool { return int(k.n) >= order }

// last returns the most recent pair; valid only when n > 0.
func (k histKey) last() pair { return k.p[k.n-1] }

// LinkPolicy selects which outgoing graph link drives a prediction.
type LinkPolicy int

// Link policies.
const (
	// MostRecentLinkPolicy follows the most recently traversed link —
	// the paper's choice, which it found more accurate than counts
	// for file access (§2.2).
	MostRecentLinkPolicy LinkPolicy = iota
	// MostProbableLinkPolicy follows the most traversed link — the
	// original Vitter & Krishnan PPM heuristic, kept for the ablation
	// benchmarks.
	MostProbableLinkPolicy
)

// node is one vertex of the pattern graph. Links are timestamped with
// their last traversal and counted; prediction follows the configured
// link policy.
type node struct {
	links      map[histKey]Tick
	counts     map[histKey]uint32
	mru        histKey // cached argmax over links by timestamp
	mruTime    Tick
	hasMRU     bool
	top        histKey // cached argmax over links by count
	topCount   uint32
	lastUpdate Tick
}

// ISPPM is the Interval-and-Size prediction-by-partial-match predictor
// of order j (§2.2): a graph whose nodes are the last j
// (offset-interval, size) pairs of a file's access stream and whose
// most-recently-used edges predict both the position and the size of
// the next request. Blocks never accessed before can be predicted,
// unlike block-granularity PPM. When the graph has no node for the
// current history (cold start, §2.2), it falls back to One-Block-Ahead
// and flags the prediction accordingly.
type ISPPM struct {
	order    int
	maxNodes int
	policy   LinkPolicy
	// noFallback disables the cold-start OBA rule (ablation only);
	// Predict then reports no prediction when the graph cannot help.
	noFallback bool
	nodes      map[histKey]*node

	started bool
	lastReq Request
	hist    histKey
	// prevValid marks that hist identified an existing node at the
	// last Observe, so the next Observe can add the connecting link.
	prevValid bool
	prevKey   histKey
}

// isppmCursor tracks a (real or speculative) position in the stream:
// the history window plus the absolute position of the last request,
// needed to materialize interval-relative predictions.
type isppmCursor struct {
	hist       histKey
	lastOffset blockdev.BlockNo
	lastSize   int32
}

// NewISPPM returns an order-j predictor with the default graph bound.
// It panics unless 1 <= order <= MaxOrder.
func NewISPPM(order int) *ISPPM {
	return NewISPPMSized(order, DefaultMaxNodes)
}

// NewISPPMSized returns an order-j predictor whose pattern graph holds
// at most maxNodes nodes.
func NewISPPMSized(order, maxNodes int) *ISPPM {
	if order < 1 || order > MaxOrder {
		panic(fmt.Sprintf("core: IS_PPM order %d outside [1,%d]", order, MaxOrder))
	}
	if maxNodes < 1 {
		panic("core: IS_PPM needs at least one node")
	}
	return &ISPPM{order: order, maxNodes: maxNodes, nodes: make(map[histKey]*node)}
}

// SetLinkPolicy switches between the paper's most-recent rule and the
// original PPM most-probable rule (for the ablation benches).
func (m *ISPPM) SetLinkPolicy(p LinkPolicy) { m.policy = p }

// SetFallback enables or disables the cold-start OBA fallback (§2.2).
func (m *ISPPM) SetFallback(enabled bool) { m.noFallback = !enabled }

// Name identifies the algorithm with its order, e.g. "IS_PPM:3".
func (m *ISPPM) Name() string { return fmt.Sprintf("IS_PPM:%d", m.order) }

// Order returns the Markov order j.
func (m *ISPPM) Order() int { return m.order }

// NodeCount returns the number of nodes currently in the graph.
func (m *ISPPM) NodeCount() int { return len(m.nodes) }

// Observe records a real user request, growing the pattern graph as in
// the paper's Figure 2, and returns the cursor positioned after it.
func (m *ISPPM) Observe(r Request, now Tick) Cursor {
	if !m.started {
		// First request: no interval can be computed yet (§2.2, t1).
		m.started = true
		m.lastReq = r
		m.hist = histKey{}
		m.prevValid = false
		return isppmCursor{hist: m.hist, lastOffset: r.Offset, lastSize: r.Size}
	}
	pr := pair{interval: int32(r.Offset - m.lastReq.Offset), size: r.Size}
	m.hist = m.hist.shift(pr, m.order)
	if m.hist.full(m.order) {
		nd := m.getOrCreate(m.hist, now)
		nd.lastUpdate = now
		if m.prevValid {
			prev := m.getOrCreate(m.prevKey, now)
			prev.setLink(m.hist, now)
		}
		m.prevKey = m.hist
		m.prevValid = true
	}
	m.lastReq = r
	return isppmCursor{hist: m.hist, lastOffset: r.Offset, lastSize: r.Size}
}

func (nd *node) setLink(target histKey, now Tick) {
	if nd.links == nil {
		nd.links = make(map[histKey]Tick)
		nd.counts = make(map[histKey]uint32)
	}
	nd.links[target] = now
	nd.counts[target]++
	// A refreshed or new link is by construction the most recent.
	if !nd.hasMRU || now >= nd.mruTime {
		nd.mru = target
		nd.mruTime = now
		nd.hasMRU = true
	}
	if c := nd.counts[target]; c > nd.topCount {
		nd.top = target
		nd.topCount = c
	}
}

// successor returns the link the given policy follows.
func (nd *node) successor(p LinkPolicy) (histKey, bool) {
	if !nd.hasMRU {
		return histKey{}, false
	}
	if p == MostProbableLinkPolicy {
		return nd.top, true
	}
	return nd.mru, true
}

func (m *ISPPM) getOrCreate(k histKey, now Tick) *node {
	if nd, ok := m.nodes[k]; ok {
		return nd
	}
	if len(m.nodes) >= m.maxNodes {
		m.evictOldestNode()
	}
	nd := &node{lastUpdate: now}
	m.nodes[k] = nd
	return nd
}

// evictOldestNode discards the least recently updated node. Links
// pointing at it are left dangling: prediction only needs the target
// key itself (its last pair), not the target node.
func (m *ISPPM) evictOldestNode() {
	var victim histKey
	var victimTime Tick
	first := true
	for k, nd := range m.nodes {
		if first || nd.lastUpdate < victimTime {
			victim, victimTime, first = k, nd.lastUpdate, false
		}
	}
	if !first {
		delete(m.nodes, victim)
	}
}

// Predict follows the most recently used link out of the node matching
// the cursor's history (§2.2); when the graph cannot help, it falls
// back to the OBA rule, marking the prediction.
func (m *ISPPM) Predict(c Cursor) (Prediction, Cursor, bool) {
	cur, ok := c.(isppmCursor)
	if !ok {
		return Prediction{}, nil, false
	}
	if cur.hist.full(m.order) {
		if nd, found := m.nodes[cur.hist]; found {
			if succ, ok := nd.successor(m.policy); ok {
				next := succ.last()
				pred := Prediction{Request: Request{
					Offset: cur.lastOffset + blockdev.BlockNo(next.interval),
					Size:   next.size,
				}}
				nc := isppmCursor{
					hist:       cur.hist.shift(next, m.order),
					lastOffset: pred.Offset,
					lastSize:   pred.Size,
				}
				return pred, nc, true
			}
		}
	}
	if m.noFallback {
		return Prediction{}, cur, false
	}
	// OBA fallback: one block past the end of the last request. The
	// speculative history advances with the synthetic pair so that a
	// later window may re-match the graph.
	fbOffset := cur.lastOffset + blockdev.BlockNo(cur.lastSize)
	pred := Prediction{
		Request:  Request{Offset: fbOffset, Size: 1},
		Fallback: true,
	}
	syn := pair{interval: int32(fbOffset - cur.lastOffset), size: 1}
	nc := isppmCursor{
		hist:       cur.hist.shift(syn, m.order),
		lastOffset: fbOffset,
		lastSize:   1,
	}
	return pred, nc, true
}

// MostRecentLink exposes, for tests and diagnostics, the MRU successor
// of the node keyed by the last j (interval,size) pairs given. ok is
// false when the node is absent or has no outgoing link.
func (m *ISPPM) MostRecentLink(pairs [][2]int32) (interval, size int32, ok bool) {
	if len(pairs) != m.order {
		return 0, 0, false
	}
	var k histKey
	for _, p := range pairs {
		k = k.shift(pair{interval: p[0], size: p[1]}, m.order)
	}
	nd, found := m.nodes[k]
	if !found || !nd.hasMRU {
		return 0, 0, false
	}
	last := nd.mru.last()
	return last.interval, last.size, true
}
