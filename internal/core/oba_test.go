package core

import (
	"testing"
)

func TestOBAPredictsNextSequentialBlock(t *testing.T) {
	o := NewOBA()
	cur := o.Observe(Request{Offset: 10, Size: 3}, 0)
	p, next, ok := o.Predict(cur)
	if !ok {
		t.Fatal("no prediction after observe")
	}
	if p.Offset != 13 || p.Size != 1 {
		t.Errorf("predicted %v, want [13,+1]", p.Request)
	}
	if p.Fallback {
		t.Error("OBA prediction must not be marked fallback")
	}
	// Chaining predictions walks sequentially: 14, 15, ...
	p2, next, ok := o.Predict(next)
	if !ok || p2.Offset != 14 {
		t.Errorf("chained prediction %v, want offset 14", p2.Request)
	}
	p3, _, _ := o.Predict(next)
	if p3.Offset != 15 {
		t.Errorf("third prediction %v, want offset 15", p3.Request)
	}
}

func TestOBAIgnoresPatternStructure(t *testing.T) {
	o := NewOBA()
	// A strided pattern: OBA still predicts last end + 1.
	o.Observe(Request{Offset: 0, Size: 2}, 1)
	cur := o.Observe(Request{Offset: 100, Size: 5}, 2)
	p, _, _ := o.Predict(cur)
	if p.Offset != 105 || p.Size != 1 {
		t.Errorf("predicted %v, want [105,+1]", p.Request)
	}
}

func TestOBARejectsForeignCursor(t *testing.T) {
	o := NewOBA()
	if _, _, ok := o.Predict(isppmCursor{}); ok {
		t.Error("OBA accepted a foreign cursor")
	}
	if _, _, ok := o.Predict(nil); ok {
		t.Error("OBA accepted a nil cursor")
	}
}

func TestOBAName(t *testing.T) {
	if NewOBA().Name() != "OBA" {
		t.Error("name wrong")
	}
}

func TestOBACursorIndependence(t *testing.T) {
	// Speculative cursors must not disturb the real state.
	o := NewOBA()
	cur := o.Observe(Request{Offset: 0, Size: 1}, 0)
	for i := 0; i < 5; i++ {
		_, cur, _ = o.Predict(cur)
	}
	real := o.Observe(Request{Offset: 50, Size: 2}, Tick(1))
	p, _, _ := o.Predict(real)
	if p.Offset != 52 {
		t.Errorf("real-stream prediction %v, want offset 52", p.Request)
	}
}
