package core

import (
	"testing"

	"repro/internal/blockdev"
)

// fuzzPredictor drives one predictor with an arbitrary request stream
// and checks the invariants every predictor owes the driver: no
// panics, chains terminate, predictions name only previously-observed
// blocks with positive sizes, and table memory stays under the
// configured bound. maxRows/maxChain are the configured bounds of p.
func fuzzPredictor(t *testing.T, p Predictor, stream []byte, maxRows, maxChain int, rowCount func() int) {
	seen := make(map[blockdev.BlockNo]bool)
	var cur Cursor
	for i := 0; i+1 < len(stream); i += 2 {
		b := blockdev.BlockNo(stream[i])
		sz := int32(stream[i+1])%8 + 1
		seen[b] = true
		cur = p.Observe(Request{Offset: b, Size: sz}, Tick(i))

		steps := 0
		for {
			pred, next, ok := p.Predict(cur)
			if !ok {
				break
			}
			if !seen[pred.Request.Offset] {
				t.Fatalf("predicted never-observed block %d", pred.Request.Offset)
			}
			if pred.Request.Size <= 0 {
				t.Fatalf("predicted non-positive size %d", pred.Request.Size)
			}
			cur = next
			steps++
			if steps > maxChain {
				t.Fatalf("chain ran %d steps, cap is %d", steps, maxChain)
			}
		}
		if rc := rowCount(); rc > maxRows {
			t.Fatalf("table grew to %d rows, bound is %d", rc, maxRows)
		}
	}
}

// FuzzMithril feeds arbitrary access sequences to the association
// miner under a deliberately tiny table so eviction and displacement
// paths are exercised constantly.
func FuzzMithril(f *testing.F) {
	f.Add([]byte{1, 1, 2, 1, 1, 1, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 1, 8, 1, 7, 1, 9, 1, 8, 1, 7, 1, 9, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		m := NewMithrilConfigured(MithrilConfig{
			ShortWindow: 2, LongWindow: 5, MinSupport: 2,
			MaxRows: 8, RowWidth: 2, MaxChain: 4,
		})
		fuzzPredictor(t, m, stream, 8, 4, m.RowCount)
	})
}

// FuzzMarkov does the same for the probability matrix, with aging
// triggered every few transitions.
func FuzzMarkov(f *testing.F) {
	f.Add([]byte{1, 1, 2, 1, 1, 1, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{5, 1, 6, 1, 5, 1, 6, 1, 5, 1, 6, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		m := NewMarkovConfigured(MarkovConfig{
			MaxRows: 8, RowWidth: 2, AgeThreshold: 4, MinProbPct: 30, MaxChain: 4,
		})
		fuzzPredictor(t, m, stream, 8, 4, m.RowCount)
	})
}
