package core

// Tick is a point on whichever clock drives a predictor. The package
// is deliberately clock-free: predictors and drivers only ever compare
// Ticks for recency (MRU links, node eviction), so any monotonically
// non-decreasing int64 works. The discrete-event simulator feeds
// virtual nanoseconds (sim.Time), the lapcache runtime feeds a
// per-file logical sequence number — one model, two clocks.
type Tick int64
