package core

import (
	"testing"

	"repro/internal/blockdev"
)

// fakeEnv is a controllable Env: prefetches queue up and complete only
// when the test says so, and the cache is a plain set.
type fakeEnv struct {
	cache     map[blockdev.BlockID]bool
	inflight  []fakeOp
	issued    []blockdev.BlockID
	fallbacks []bool
}

type fakeOp struct {
	b         blockdev.BlockID
	cancelled func() bool
	done      func()
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{cache: make(map[blockdev.BlockID]bool)}
}

func (f *fakeEnv) Cached(b blockdev.BlockID) bool { return f.cache[b] }

func (f *fakeEnv) Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) bool {
	f.issued = append(f.issued, b)
	f.fallbacks = append(f.fallbacks, fallback)
	f.inflight = append(f.inflight, fakeOp{b, cancelled, done})
	return true
}

// completeOne finishes the oldest in-flight prefetch, inserting the
// block into the cache unless the operation was cancelled.
func (f *fakeEnv) completeOne() bool {
	if len(f.inflight) == 0 {
		return false
	}
	op := f.inflight[0]
	f.inflight = f.inflight[1:]
	if op.cancelled != nil && op.cancelled() {
		return true
	}
	f.cache[op.b] = true
	op.done()
	return true
}

func (f *fakeEnv) completeAll() {
	for f.completeOne() {
	}
}

func bid(f, b int) blockdev.BlockID {
	return blockdev.BlockID{File: blockdev.FileID(f), Block: blockdev.BlockNo(b)}
}

func newDriver(t *testing.T, pred Predictor, mode Mode, maxOut int, fileBlocks int, env Env) *Driver {
	t.Helper()
	return NewDriver(DriverConfig{
		Predictor:      pred,
		Mode:           mode,
		MaxOutstanding: maxOut,
		File:           1,
		FileBlocks:     blockdev.BlockNo(fileBlocks),
		Env:            env,
	})
}

func TestOneShotOBAPrefetchesOneBlock(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeOneShot, 1, 1000, env)
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	if len(env.issued) != 1 || env.issued[0] != bid(1, 2) {
		t.Fatalf("issued %v, want [1:2]", env.issued)
	}
	env.completeAll()
	if len(env.issued) != 1 {
		t.Errorf("one-shot OBA chained: issued %v", env.issued)
	}
}

func TestOneShotISPPMPrefetchesWholePredictedRequest(t *testing.T) {
	env := newFakeEnv()
	m := NewISPPM(1)
	d := newDriver(t, m, ModeOneShot, 1, 1000, env)
	// Teach the paper pattern via the driver.
	for i, r := range paperPattern(4) {
		d.OnUserRequest(r, Tick(i+1), false)
		env.completeAll()
	}
	// After the 4th request (offset 11, size 3) the prediction is
	// (16, 2): both blocks must be prefetched, one at a time (linear).
	got := env.issued[len(env.issued)-2:]
	if got[0] != bid(1, 16) || got[1] != bid(1, 17) {
		t.Errorf("last issued = %v, want [1:16 1:17]", got)
	}
}

func TestAggressiveOBAWalksToEndOfFile(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 10, env)
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	env.completeAll()
	// Must have prefetched blocks 2..9 and then stopped at EOF.
	if len(env.issued) != 8 {
		t.Fatalf("issued %d blocks, want 8 (2..9)", len(env.issued))
	}
	for i, b := range env.issued {
		if b != bid(1, i+2) {
			t.Errorf("issued[%d] = %v, want 1:%d", i, b, i+2)
		}
	}
	if d.Stats().ChainStops != 1 {
		t.Errorf("ChainStops = %d, want 1", d.Stats().ChainStops)
	}
}

func TestLinearLimitOneOutstanding(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 100, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	if len(env.inflight) != 1 {
		t.Fatalf("outstanding = %d, want 1 (linear)", len(env.inflight))
	}
	if d.Outstanding() != 1 {
		t.Errorf("driver Outstanding = %d", d.Outstanding())
	}
	env.completeOne()
	if len(env.inflight) != 1 {
		t.Errorf("after completion outstanding = %d, want 1 (next issued)", len(env.inflight))
	}
}

func TestUnlimitedAggressiveFloodsQueue(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 0, 50, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	// Unlimited: all 49 remaining blocks issued immediately.
	if len(env.inflight) != 49 {
		t.Errorf("outstanding = %d, want 49 (unlimited)", len(env.inflight))
	}
}

func TestKOutstandingLimit(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 4, 100, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	if len(env.inflight) != 4 {
		t.Errorf("outstanding = %d, want 4", len(env.inflight))
	}
}

func TestAggressiveCorrectPredictionKeepsChain(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 1000, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	for i := 0; i < 5; i++ {
		env.completeOne()
	}
	issuedBefore := len(env.issued)
	restartsBefore := d.Stats().Restarts
	// The user now reads block 1, which was already prefetched:
	// satisfied=true, the chain must not restart.
	d.OnUserRequest(Request{Offset: 1, Size: 1}, 2, true)
	if d.Stats().Restarts != restartsBefore {
		t.Error("correct prediction restarted the chain")
	}
	env.completeOne()
	if len(env.issued) <= issuedBefore {
		t.Error("chain did not keep running after a satisfied request")
	}
	// Sequence must continue where it was, not from block 2.
	last := env.issued[len(env.issued)-1]
	if last.Block <= 6 {
		t.Errorf("chain regressed to block %d", last.Block)
	}
}

func TestAggressiveMispredictionRestartsChain(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 1000, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	for i := 0; i < 3; i++ {
		env.completeOne()
	}
	// The user jumps to block 500 (not prefetched): restart there.
	d.OnUserRequest(Request{Offset: 500, Size: 1}, 2, false)
	if d.Stats().Restarts != 2 { // first request also counts as unsatisfied
		t.Errorf("Restarts = %d, want 2", d.Stats().Restarts)
	}
	env.completeAll()
	// After restart the next issued block must be 501.
	found := false
	for _, b := range env.issued {
		if b == bid(1, 501) {
			found = true
		}
	}
	if !found {
		t.Errorf("restart did not prefetch from the new position; issued %v", env.issued)
	}
}

func TestRestartCancelsStaleOps(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 1000, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	// One op in flight for block 1; restart before it completes.
	d.OnUserRequest(Request{Offset: 500, Size: 1}, 2, false)
	// The stale op must now report cancelled.
	if !env.inflight[0].cancelled() {
		t.Error("stale-generation op not cancelled")
	}
	env.completeAll()
	if env.cache[bid(1, 1)] {
		t.Error("cancelled op still populated the cache")
	}
}

func TestDriverSkipsCachedBlocks(t *testing.T) {
	env := newFakeEnv()
	env.cache[bid(1, 2)] = true
	env.cache[bid(1, 3)] = true
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 6, env)
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	env.completeAll()
	// Blocks 2,3 cached: only 4,5 fetched.
	if len(env.issued) != 2 || env.issued[0] != bid(1, 4) || env.issued[1] != bid(1, 5) {
		t.Errorf("issued %v, want [1:4 1:5]", env.issued)
	}
}

func TestDriverClipsPredictionsToFile(t *testing.T) {
	env := newFakeEnv()
	m := NewISPPM(1)
	d := NewDriver(DriverConfig{
		Predictor: m, Mode: ModeOneShot, MaxOutstanding: 1,
		File: 1, FileBlocks: 20, Env: env,
	})
	// Teach stride 8 with size 4: prediction from offset 16 would be
	// [24, 28) — fully outside a 20-block file.
	reqs := []Request{{0, 4}, {8, 4}, {16, 4}}
	for i, r := range reqs {
		d.OnUserRequest(r, Tick(i+1), false)
		env.completeAll()
	}
	for _, b := range env.issued {
		if b.Block >= 20 {
			t.Errorf("issued out-of-file block %v", b)
		}
	}
}

func TestAggressiveChainStopsAtEOFAndResumesOnNextRequest(t *testing.T) {
	env := newFakeEnv()
	d := newDriver(t, NewOBA(), ModeAggressive, 1, 4, env)
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	env.completeAll() // prefetches 1,2,3 then stops at EOF
	if got := len(env.issued); got != 3 {
		t.Fatalf("issued %d, want 3", got)
	}
	// User reads block 1 (satisfied): chain resumes from the real
	// cursor; blocks 2,3 cached so nothing new to fetch, and it stops
	// again without spinning.
	d.OnUserRequest(Request{Offset: 1, Size: 1}, 2, true)
	env.completeAll()
	if len(env.issued) != 3 {
		t.Errorf("resumed chain issued spurious fetches: %v", env.issued)
	}
}

func TestDryPatternDoesNotSpin(t *testing.T) {
	env := newFakeEnv()
	m := NewISPPM(1)
	d := NewDriver(DriverConfig{
		Predictor: m, Mode: ModeAggressive, MaxOutstanding: 1,
		File: 1, FileBlocks: 100, Env: env, MaxDrySteps: 8,
	})
	// Pre-train a two-block cycle 10 <-> 20 directly on the predictor
	// so the graph (not the OBA fallback) drives the chain, and mark
	// both blocks cached: the chain can always predict in-file blocks
	// but never finds work.
	for i, r := range []Request{{10, 1}, {20, 1}, {10, 1}, {20, 1}} {
		m.Observe(r, Tick(i+1))
	}
	env.cache[bid(1, 10)] = true
	env.cache[bid(1, 20)] = true
	d.OnUserRequest(Request{Offset: 10, Size: 1}, 5, true)
	if d.Stats().ChainStops == 0 {
		t.Error("cyclic cached pattern did not trip the dry-step guard")
	}
	if len(env.issued) != 0 {
		t.Errorf("dry chain issued %v", env.issued)
	}
}

func TestFallbackAccounting(t *testing.T) {
	env := newFakeEnv()
	m := NewISPPM(1)
	d := newDriver(t, m, ModeAggressive, 1, 1000, env)
	// Only one request: everything prefetched comes from fallback.
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	for i := 0; i < 5; i++ {
		env.completeOne()
	}
	st := d.Stats()
	if st.Issued == 0 || st.FallbackIssued != st.Issued {
		t.Errorf("fallback accounting: issued=%d fallback=%d", st.Issued, st.FallbackIssued)
	}
}

func TestDriverNames(t *testing.T) {
	env := newFakeEnv()
	cases := []struct {
		pred Predictor
		mode Mode
		out  int
		want string
	}{
		{NewOBA(), ModeOneShot, 1, "OBA"},
		{NewOBA(), ModeAggressive, 1, "Ln_Agr_OBA"},
		{NewOBA(), ModeAggressive, 0, "Agr_OBA"},
		{NewISPPM(1), ModeOneShot, 1, "IS_PPM:1"},
		{NewISPPM(3), ModeAggressive, 1, "Ln_Agr_IS_PPM:3"},
	}
	for _, c := range cases {
		d := newDriver(t, c.pred, c.mode, c.out, 10, env)
		if d.Name() != c.want {
			t.Errorf("Name = %q, want %q", d.Name(), c.want)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeOneShot.String() != "one-shot" || ModeAggressive.String() != "aggressive" {
		t.Error("mode strings wrong")
	}
}

func TestNewDriverValidation(t *testing.T) {
	env := newFakeEnv()
	bad := []DriverConfig{
		{Mode: ModeOneShot, MaxOutstanding: 1, File: 1, FileBlocks: 10, Env: env},            // nil predictor
		{Predictor: NewOBA(), Mode: ModeOneShot, MaxOutstanding: 1, File: 1, FileBlocks: 10}, // nil env
		{Predictor: NewOBA(), MaxOutstanding: -1, File: 1, FileBlocks: 10, Env: env},
		{Predictor: NewOBA(), MaxOutstanding: 1, File: 1, FileBlocks: 0, Env: env},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewDriver(cfg)
		}()
	}
}

func TestISPPMAggressiveFollowsLearnedPattern(t *testing.T) {
	env := newFakeEnv()
	m := NewISPPM(1)
	d := newDriver(t, m, ModeAggressive, 1, 10000, env)
	reqs := paperPattern(6)
	for i, r := range reqs {
		// Mark requested blocks cached (as a demand fetch would).
		for _, b := range r.blocks() {
			env.cache[bid(1, int(b))] = true
		}
		d.OnUserRequest(r, Tick(i+1), i > 3)
	}
	// Drain some chain work and verify it follows the +3/+5 pattern
	// beyond the observed region.
	for i := 0; i < 20; i++ {
		env.completeOne()
	}
	want := map[blockdev.BlockID]bool{}
	// Continue the pattern from reqs[5]=(19,3): next (24,2),(27,3),(32,2)...
	for _, r := range []Request{{24, 2}, {27, 3}, {32, 2}} {
		for _, b := range r.blocks() {
			want[bid(1, int(b))] = true
		}
	}
	hit := 0
	for _, b := range env.issued {
		if want[b] {
			hit++
		}
	}
	if hit < 5 {
		t.Errorf("aggressive IS_PPM issued %d/%d pattern blocks; issued=%v", hit, len(want), env.issued)
	}
}

// blocks lists the block numbers covered by the request (test helper).
func (r Request) blocks() []blockdev.BlockNo {
	out := make([]blockdev.BlockNo, 0, r.Size)
	for b := r.Offset; b < r.End(); b++ {
		out = append(out, b)
	}
	return out
}
