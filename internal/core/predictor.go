// Package core implements the paper's contribution: the prefetch
// predictors — One-Block-Ahead (OBA) and the Interval-and-Size
// prediction-by-partial-match family (IS_PPM:j) — and the driver that
// turns any predictor into a *linear aggressive* prefetcher: one that
// keeps walking the prediction chain ahead of the application while
// never keeping more than a fixed number of prefetch operations (one,
// in the paper) in flight per file.
package core

import (
	"fmt"

	"repro/internal/blockdev"
)

// Request is one user request as seen by a predictor: the block-level
// image of a read or write, reduced to its first block and its length
// in blocks. The paper models the access stream of a file as the
// sequence of (offset-interval, size) pairs derived from consecutive
// Requests (§2.2).
type Request struct {
	Offset blockdev.BlockNo // first block of the request
	Size   int32            // number of blocks
}

// End returns the first block after the request.
func (r Request) End() blockdev.BlockNo { return r.Offset + blockdev.BlockNo(r.Size) }

// String renders the request as "[off,+size]".
func (r Request) String() string { return fmt.Sprintf("[%d,+%d]", r.Offset, r.Size) }

// Prediction is a predictor's guess at the next request.
type Prediction struct {
	Request
	// Fallback marks predictions produced by the cold-start OBA rule
	// inside IS_PPM rather than by the pattern graph; the paper
	// reports what fraction of prefetched blocks came from it (§2.2).
	Fallback bool
}

// Cursor is an opaque snapshot of a predictor's position in its model.
// Aggressive drivers hold a *speculative* cursor that walks ahead of
// the real access stream ("it behaves as if the user had already
// requested the prefetched blocks and goes for the next node in the
// graph", §3.1) and reset it to the real cursor after a misprediction.
type Cursor any

// Predictor learns the access stream of one file and predicts the next
// request. Implementations are single-goroutine, like the simulator.
type Predictor interface {
	// Name identifies the algorithm (e.g. "OBA", "IS_PPM:3").
	Name() string
	// Observe records a real user request, updating the model, and
	// returns the cursor positioned after that request.
	Observe(r Request, now Tick) Cursor
	// Predict returns the predicted request following the given
	// cursor plus the cursor advanced past the prediction. ok is false
	// when the predictor has no basis for any guess (e.g. before the
	// first request).
	Predict(c Cursor) (p Prediction, next Cursor, ok bool)
}
