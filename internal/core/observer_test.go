package core

import (
	"testing"

	"repro/internal/blockdev"
)

// recordingObserver logs every outstanding delta the driver reports.
type recordingObserver struct {
	deltas []int
	files  []blockdev.FileID
	net    int
}

func (o *recordingObserver) OutstandingChanged(f blockdev.FileID, delta int) {
	o.deltas = append(o.deltas, delta)
	o.files = append(o.files, f)
	o.net += delta
	if o.net < 0 {
		panic("observer saw negative outstanding")
	}
}

func TestDriverReportsOutstandingToObserver(t *testing.T) {
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: 1,
		File:           1,
		FileBlocks:     10,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	env.completeAll()

	if obs.net != 0 {
		t.Errorf("net outstanding after drain = %d, want 0", obs.net)
	}
	if len(obs.deltas) == 0 {
		t.Fatal("observer saw nothing")
	}
	// With MaxOutstanding=1 the running sum may never exceed 1 — the
	// linear throttle as the observer sees it.
	run, peak := 0, 0
	for i, dl := range obs.deltas {
		run += dl
		if run > peak {
			peak = run
		}
		if obs.files[i] != 1 {
			t.Errorf("delta %d attributed to file %d, want 1", i, obs.files[i])
		}
	}
	if peak != 1 {
		t.Errorf("observed outstanding peak = %d, want 1", peak)
	}
	if d.Stats().HighWater != 1 {
		t.Errorf("driver high-water = %d, want 1", d.Stats().HighWater)
	}
}

func TestDriverStopChainReleasesOutstanding(t *testing.T) {
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: 1,
		File:           2,
		FileBlocks:     10,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	if obs.net != 1 {
		t.Fatalf("outstanding before stop = %d, want 1 (prefetch in flight)", obs.net)
	}
	// Close the file while the prefetch is still in flight: the driver
	// must hand the outstanding count back immediately, not wait for a
	// completion that will be discarded.
	d.StopChain()
	if obs.net != 0 {
		t.Errorf("outstanding after StopChain = %d, want 0", obs.net)
	}
	// The orphaned completion must not double-release.
	env.completeAll()
	if obs.net != 0 {
		t.Errorf("outstanding after orphan completion = %d, want 0", obs.net)
	}
}
