package core

import (
	"testing"

	"repro/internal/blockdev"
)

// recordingObserver logs every outstanding delta the driver reports.
type recordingObserver struct {
	deltas []int
	files  []blockdev.FileID
	net    int
}

func (o *recordingObserver) OutstandingChanged(f blockdev.FileID, delta int) {
	o.deltas = append(o.deltas, delta)
	o.files = append(o.files, f)
	o.net += delta
	if o.net < 0 {
		panic("observer saw negative outstanding")
	}
}

func TestDriverReportsOutstandingToObserver(t *testing.T) {
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: 1,
		File:           1,
		FileBlocks:     10,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	env.completeAll()

	if obs.net != 0 {
		t.Errorf("net outstanding after drain = %d, want 0", obs.net)
	}
	if len(obs.deltas) == 0 {
		t.Fatal("observer saw nothing")
	}
	// With MaxOutstanding=1 the running sum may never exceed 1 — the
	// linear throttle as the observer sees it.
	run, peak := 0, 0
	for i, dl := range obs.deltas {
		run += dl
		if run > peak {
			peak = run
		}
		if obs.files[i] != 1 {
			t.Errorf("delta %d attributed to file %d, want 1", i, obs.files[i])
		}
	}
	if peak != 1 {
		t.Errorf("observed outstanding peak = %d, want 1", peak)
	}
	if d.Stats().HighWater != 1 {
		t.Errorf("driver high-water = %d, want 1", d.Stats().HighWater)
	}
}

func TestDriverStopChainReleasesOutstanding(t *testing.T) {
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: 1,
		File:           2,
		FileBlocks:     10,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 2}, 1, false)
	if obs.net != 1 {
		t.Fatalf("outstanding before stop = %d, want 1 (prefetch in flight)", obs.net)
	}
	// Close the file while the prefetch is still in flight: the driver
	// must hand the outstanding count back immediately, not wait for a
	// completion that will be discarded.
	d.StopChain()
	if obs.net != 0 {
		t.Errorf("outstanding after StopChain = %d, want 0", obs.net)
	}
	// The orphaned completion must not double-release.
	env.completeAll()
	if obs.net != 0 {
		t.Errorf("outstanding after orphan completion = %d, want 0", obs.net)
	}
}

// TestDriverObserverWindowedPeak is the K>1 generalization of the
// peak check: a windowed driver may run the observer's sum up to K,
// never past it, and still drain to zero.
func TestDriverObserverWindowedPeak(t *testing.T) {
	const k = 3
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: k,
		File:           3,
		FileBlocks:     64,
		Env:            env,
		Observer:       obs,
	})
	for i := 0; i < 8; i++ {
		d.OnUserRequest(Request{Offset: blockdev.BlockNo(i), Size: 1}, Tick(i+1), false)
	}
	run, peak := 0, 0
	for _, dl := range obs.deltas {
		run += dl
		if run > peak {
			peak = run
		}
	}
	if peak != k {
		t.Errorf("observed outstanding peak = %d, want %d", peak, k)
	}
	env.completeAll()
	if obs.net != 0 {
		t.Errorf("net outstanding after drain = %d, want 0", obs.net)
	}
	if hw := d.Stats().HighWater; hw != k {
		t.Errorf("driver high-water = %d, want %d", hw, k)
	}
}

// TestDriverStopChainWindowedOrphans closes a file with a *full K>1
// window in flight, restarts the chain, and then lets the orphaned
// completions land amidst the new generation's: each orphan must be
// discarded exactly once (no double-decrement), the restarted chain's
// accounting must be untouched, and the peak must stay within K.
// recordingObserver panics if any interleaving drives the sum
// negative.
func TestDriverStopChainWindowedOrphans(t *testing.T) {
	const k = 3
	env := newFakeEnv()
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: k,
		File:           4,
		FileBlocks:     64,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	d.OnUserRequest(Request{Offset: 1, Size: 1}, 2, false)
	if obs.net != k {
		t.Fatalf("outstanding before stop = %d, want a full window of %d", obs.net, k)
	}
	orphans := len(env.inflight)

	// Close with the window full: the driver hands back all K at once.
	d.StopChain()
	if obs.net != 0 {
		t.Fatalf("outstanding after StopChain = %d, want 0", obs.net)
	}

	// Restart the chain; the old generation's operations are still in
	// env.inflight ahead of the new ones.
	d.OnUserRequest(Request{Offset: 20, Size: 1}, 3, false)
	newOps := obs.net
	if newOps == 0 {
		t.Fatal("restarted chain issued nothing")
	}
	for i := 0; i < orphans; i++ {
		env.completeOne() // old-generation orphan: must be discarded
	}
	if obs.net < newOps {
		t.Errorf("orphan completions stole %d release(s) from the live generation", newOps-obs.net)
	}
	env.completeAll()
	if obs.net != 0 {
		t.Errorf("net outstanding after drain = %d, want 0", obs.net)
	}
	run, peak := 0, 0
	for _, dl := range obs.deltas {
		run += dl
		if run > peak {
			peak = run
		}
	}
	if peak > k {
		t.Errorf("observed outstanding peak = %d, want <= %d", peak, k)
	}
}

// doubleFireEnv retains every done callback so the test can invoke a
// completion twice — the pathological environment the release latch
// defends against.
type doubleFireEnv struct {
	cache map[blockdev.BlockID]bool
	dones []func()
}

func (f *doubleFireEnv) Cached(b blockdev.BlockID) bool { return f.cache[b] }

func (f *doubleFireEnv) Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) bool {
	f.cache[b] = true // complete into the cache up front; timing is the test's
	f.dones = append(f.dones, done)
	return true
}

// TestDriverDoubleFiredDoneReleasesOnce fires each completion twice:
// the windowed accounting must decrement once per operation, never
// twice, and the completion stats must count each operation once.
func TestDriverDoubleFiredDoneReleasesOnce(t *testing.T) {
	const k = 2
	env := &doubleFireEnv{cache: make(map[blockdev.BlockID]bool)}
	obs := &recordingObserver{}
	d := NewDriver(DriverConfig{
		Predictor:      NewOBA(),
		Mode:           ModeAggressive,
		MaxOutstanding: k,
		File:           5,
		FileBlocks:     8,
		Env:            env,
		Observer:       obs,
	})
	d.OnUserRequest(Request{Offset: 0, Size: 1}, 1, false)
	fired := 0
	for i := 0; i < len(env.dones); i++ { // dones grows as completions pump
		env.dones[i]()
		env.dones[i]()
		fired++
	}
	if obs.net != 0 {
		t.Errorf("net outstanding after double-fired drain = %d, want 0", obs.net)
	}
	if got := d.Stats().Completed; got != uint64(fired) {
		t.Errorf("Completed = %d, want %d (each op counted once)", got, fired)
	}
	run, peak := 0, 0
	for _, dl := range obs.deltas {
		run += dl
		if run > peak {
			peak = run
		}
	}
	if peak > k {
		t.Errorf("observed outstanding peak = %d, want <= %d", peak, k)
	}
}
