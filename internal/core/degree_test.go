package core

import (
	"sync"
	"testing"
)

// feedN delivers n timely/late/wasted events in that proportion, in a
// deterministic interleave, so a test can steer one evaluation window.
func feedWindow(p *AdaptiveFDP, timely, late, wasted int) {
	for i := 0; i < timely; i++ {
		p.OnTimely()
	}
	for i := 0; i < late; i++ {
		p.OnLate()
	}
	for i := 0; i < wasted; i++ {
		p.OnWasted()
	}
}

func TestFixedDegreeNames(t *testing.T) {
	cases := []struct {
		k    int
		want string
	}{
		{0, "unlimited"},
		{1, "strict-linear"},
		{4, "fixed:4"},
	}
	for _, c := range cases {
		p := &FixedDegree{K: c.k}
		if got := p.Name(); got != c.want {
			t.Errorf("FixedDegree{%d}.Name() = %q, want %q", c.k, got, c.want)
		}
		if p.Allow() != c.k || p.Cap() != c.k {
			t.Errorf("FixedDegree{%d}: Allow=%d Cap=%d, want both %d", c.k, p.Allow(), p.Cap(), c.k)
		}
	}
	if StrictLinear().Allow() != 1 {
		t.Error("StrictLinear().Allow() != 1")
	}
	// Feedback must be a no-op on the static policy.
	p := StrictLinear()
	p.OnTimely()
	p.OnLate()
	p.OnWasted()
	p.OnUnused()
	if p.Allow() != 1 {
		t.Error("feedback moved a FixedDegree")
	}
}

func TestAdaptiveStartsLinear(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{})
	if p.Allow() != 1 {
		t.Errorf("initial Allow = %d, want 1 (linear until feedback earns more)", p.Allow())
	}
	if p.Cap() != DefaultAdaptiveCap {
		t.Errorf("default Cap = %d, want %d", p.Cap(), DefaultAdaptiveCap)
	}
}

func TestAdaptiveWidensWhenAccurateAndLate(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{Window: 8, Hysteresis: 2})
	// All-useful, heavily late windows: the timely-starved signature.
	feedWindow(p, 4, 4, 0)
	if p.Allow() != 1 {
		t.Fatalf("widened after one verdict, hysteresis is 2 (Allow=%d)", p.Allow())
	}
	feedWindow(p, 4, 4, 0)
	if p.Allow() != 2 {
		t.Fatalf("Allow = %d after two agreeing widen verdicts, want 2", p.Allow())
	}
	// Keep starving: the window climbs one step per two verdicts until
	// the hard cap, never past it.
	for i := 0; i < 40; i++ {
		feedWindow(p, 4, 4, 0)
	}
	if p.Allow() != DefaultAdaptiveCap {
		t.Errorf("Allow = %d after sustained starvation, want cap %d", p.Allow(), DefaultAdaptiveCap)
	}
	s := p.Stats()
	if s.Widens != uint64(DefaultAdaptiveCap-1) {
		t.Errorf("Widens = %d, want %d", s.Widens, DefaultAdaptiveCap-1)
	}
}

func TestAdaptiveClampsOnInaccuracy(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{Window: 8, Hysteresis: 2})
	for i := 0; i < 6; i++ {
		feedWindow(p, 4, 4, 0)
	}
	if p.Allow() < 3 {
		t.Fatalf("setup failed to widen (Allow=%d)", p.Allow())
	}
	// One garbage window — accuracy 2/8 — clamps straight to linear,
	// no hysteresis.
	feedWindow(p, 1, 1, 6)
	if p.Allow() != 1 {
		t.Errorf("Allow = %d after inaccurate window, want immediate clamp to 1", p.Allow())
	}
	if s := p.Stats(); s.Clamps != 1 {
		t.Errorf("Clamps = %d, want 1", s.Clamps)
	}
	// Clamping when already linear is not counted again.
	feedWindow(p, 1, 1, 6)
	if s := p.Stats(); s.Clamps != 1 {
		t.Errorf("Clamps = %d after clamp-at-1, want still 1", s.Clamps)
	}
}

func TestAdaptiveNarrowsWhenNothingLate(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{Window: 8, Hysteresis: 2})
	for i := 0; i < 4; i++ {
		feedWindow(p, 4, 4, 0)
	}
	if p.Allow() != 3 {
		t.Fatalf("setup Allow = %d, want 3", p.Allow())
	}
	// Accurate but nothing late: depth already covers the read-ahead
	// distance, so probe downward (two agreeing verdicts per step).
	feedWindow(p, 8, 0, 0)
	if p.Allow() != 3 {
		t.Fatalf("narrowed after one verdict, hysteresis is 2 (Allow=%d)", p.Allow())
	}
	feedWindow(p, 8, 0, 0)
	if p.Allow() != 2 {
		t.Errorf("Allow = %d after two all-timely windows, want 2", p.Allow())
	}
	// And never below 1.
	for i := 0; i < 10; i++ {
		feedWindow(p, 8, 0, 0)
	}
	if p.Allow() != 1 {
		t.Errorf("Allow = %d after sustained all-timely, want floor of 1", p.Allow())
	}
}

func TestAdaptiveHysteresisResetsOnDisagreement(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{Window: 8, Hysteresis: 2})
	feedWindow(p, 4, 4, 0) // widen verdict (streak 1)
	feedWindow(p, 3, 2, 3) // accuracy 5/8 = 0.625: neutral, streak resets
	feedWindow(p, 4, 4, 0) // widen verdict (streak 1 again)
	if p.Allow() != 1 {
		t.Errorf("Allow = %d, want 1: a neutral window must reset the widen streak", p.Allow())
	}
}

func TestAdaptiveBackpressureHalves(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{Window: 8, Hysteresis: 2})
	for i := 0; i < 12; i++ {
		feedWindow(p, 4, 4, 0)
	}
	if p.Allow() != 7 {
		t.Fatalf("setup Allow = %d, want 7", p.Allow())
	}
	p.OnBackpressure()
	if p.Allow() != 3 {
		t.Errorf("Allow = %d after backpressure, want 3 (halved)", p.Allow())
	}
	p.OnBackpressure()
	p.OnBackpressure()
	if p.Allow() != 1 {
		t.Errorf("Allow = %d after repeated backpressure, want floor of 1", p.Allow())
	}
	p.OnBackpressure()
	if p.Allow() != 1 {
		t.Errorf("Allow = %d, backpressure at 1 must stay 1", p.Allow())
	}
	if s := p.Stats(); s.Backpressure != 4 {
		t.Errorf("Backpressure = %d, want 4", s.Backpressure)
	}
}

func TestAdaptiveConcurrentFeedback(t *testing.T) {
	p := NewAdaptiveFDP(AdaptiveFDPConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				switch (g + i) % 4 {
				case 0:
					p.OnTimely()
				case 1:
					p.OnLate()
				case 2:
					p.OnWasted()
				case 3:
					p.OnBackpressure()
				}
				if a := p.Allow(); a < 1 || a > p.Cap() {
					panic("Allow out of [1, Cap] under concurrency")
				}
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.Timely+s.Late+s.Wasted+s.Unused != 6000 {
		t.Errorf("lifetime feedback total = %d, want 6000", s.Timely+s.Late+s.Wasted+s.Unused)
	}
}

func TestDegreeSetRoutesPerFile(t *testing.T) {
	s := NewDegreeSet(SpecAdAgrISPPM1)
	a, b := s.For(1), s.For(2)
	if a == b {
		t.Fatal("distinct files share a policy")
	}
	if s.For(1) != a {
		t.Fatal("For is not stable per file")
	}
	// Starve file 1 only; file 2 must stay linear.
	for i := 0; i < 200; i++ {
		s.OnTimely(1)
		s.OnLate(1)
	}
	if a.Allow() <= 1 {
		t.Errorf("file 1 Allow = %d, want widened", a.Allow())
	}
	if b.Allow() != 1 {
		t.Errorf("file 2 Allow = %d, want untouched 1", b.Allow())
	}
	if s.MaxDegree() != a.Allow() {
		t.Errorf("MaxDegree = %d, want %d", s.MaxDegree(), a.Allow())
	}

	// A strict-linear spec hands out static policies.
	ls := NewDegreeSet(SpecLnAgrISPPM1)
	if _, ok := ls.For(1).(*FixedDegree); !ok {
		t.Errorf("linear spec policy = %T, want *FixedDegree", ls.For(1))
	}
	if ls.MaxDegree() != 1 {
		t.Errorf("linear MaxDegree = %d, want 1", ls.MaxDegree())
	}
}

// FuzzDegreePolicy drives an AdaptiveFDP with an arbitrary feedback
// sequence and checks the controller's safety envelope: Allow stays in
// [1, Cap] after every event, and the stats counters never go
// inconsistent.
func FuzzDegreePolicy(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 1, 0, 1})
	f.Add([]byte{4, 4, 4, 4})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, events []byte) {
		cap := 1 + int(len(events))%11 // vary the ceiling too
		p := NewAdaptiveFDP(AdaptiveFDPConfig{Cap: cap, Window: 4, Hysteresis: 1})
		for _, ev := range events {
			switch ev % 5 {
			case 0:
				p.OnTimely()
			case 1:
				p.OnLate()
			case 2:
				p.OnWasted()
			case 3:
				p.OnUnused()
			case 4:
				p.OnBackpressure()
			}
			if a := p.Allow(); a < 1 || a > p.Cap() {
				t.Fatalf("Allow = %d outside [1, %d] after event %d", a, p.Cap(), ev%5)
			}
		}
		s := p.Stats()
		if s.Timely+s.Late+s.Wasted+s.Unused != uint64(len(events))-s.Backpressure {
			t.Fatalf("lifetime totals %d+%d+%d+%d != events %d - backpressure %d",
				s.Timely, s.Late, s.Wasted, s.Unused, len(events), s.Backpressure)
		}
		if s.Degree != p.Allow() {
			t.Fatalf("Stats.Degree = %d, Allow = %d", s.Degree, p.Allow())
		}
	})
}
