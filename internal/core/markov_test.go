package core

import (
	"testing"

	"repro/internal/blockdev"
)

// TestMarkovLearnsDominantSuccessor: when one successor dominates a
// row, it is predicted; the occasional alternative is not.
func TestMarkovLearnsDominantSuccessor(t *testing.T) {
	m := NewMarkov()
	var cur Cursor
	for i := 0; i < 12; i++ {
		observe(m, 1)
		if i%4 == 3 {
			observe(m, 3) // minority successor
		} else {
			observe(m, 2) // dominant successor
		}
	}
	cur = observe(m, 1)
	p, _, ok := m.Predict(cur)
	if !ok {
		t.Fatal("no prediction from a learned row")
	}
	if p.Request.Offset != 2 {
		t.Fatalf("predicted %d, want the dominant successor 2", p.Request.Offset)
	}
}

// TestMarkovProbabilityGate: a coin-flip row must not predict when the
// threshold demands better than a coin flip — a transition that is
// merely the most recent is not worth prefetching.
func TestMarkovProbabilityGate(t *testing.T) {
	m := NewMarkovConfigured(MarkovConfig{MinProbPct: 60})
	for i := 0; i < 10; i++ {
		observe(m, 1)
		observe(m, 2)
		observe(m, 1)
		observe(m, 3)
	}
	cur := observe(m, 1)
	if p, _, ok := m.Predict(cur); ok {
		t.Fatalf("predicted %d from a ~50/50 row with a 60%% gate", p.Request.Offset)
	}
}

// TestMarkovAgingTracksShift: after the workload's dominant transition
// changes, aging must let the new winner overtake the stale one
// instead of the lifetime counts pinning the argmax forever.
func TestMarkovAgingTracksShift(t *testing.T) {
	m := NewMarkovConfigured(MarkovConfig{AgeThreshold: 8})
	for i := 0; i < 20; i++ { // old regime: 1 -> 2
		observe(m, 1)
		observe(m, 2)
	}
	for i := 0; i < 20; i++ { // new regime: 1 -> 5
		observe(m, 1)
		observe(m, 5)
	}
	cur := observe(m, 1)
	p, _, ok := m.Predict(cur)
	if !ok || p.Request.Offset != 5 {
		t.Fatalf("stale transition still wins after regime shift: ok=%v p=%+v", ok, p)
	}
}

// TestMarkovRowBound: the matrix must never exceed MaxRows states.
func TestMarkovRowBound(t *testing.T) {
	m := NewMarkovConfigured(MarkovConfig{MaxRows: 8})
	for b := blockdev.BlockNo(0); b < 1000; b++ {
		observe(m, b)
	}
	if m.RowCount() > m.MaxRows() {
		t.Fatalf("RowCount %d exceeds MaxRows %d", m.RowCount(), m.MaxRows())
	}
}

// TestMarkovChainDepth: most-probable chains stop at MaxChain over a
// cycle.
func TestMarkovChainDepth(t *testing.T) {
	m := NewMarkovConfigured(MarkovConfig{MaxChain: 4})
	var cur Cursor
	for i := 0; i < 16; i++ {
		observe(m, 1)
		cur = observe(m, 2)
	}
	cur = observe(m, 1)
	steps := 0
	for {
		_, next, ok := m.Predict(cur)
		if !ok {
			break
		}
		cur = next
		steps++
		if steps > 4 {
			t.Fatalf("chain ran %d steps, cap is 4", steps)
		}
	}
	if steps != 4 {
		t.Fatalf("chain length %d, want exactly MaxChain=4 over a cycle", steps)
	}
}

// TestMarkovSelfTransitionsIgnored: a block re-requested back to back
// must not become its own successor.
func TestMarkovSelfTransitionsIgnored(t *testing.T) {
	m := NewMarkov()
	var cur Cursor
	for i := 0; i < 32; i++ {
		cur = observe(m, 7)
	}
	if _, _, ok := m.Predict(cur); ok {
		t.Fatal("self-transition predicted")
	}
}

// TestMarkovForeignCursor: a cursor from another predictor type must
// be rejected, not crash.
func TestMarkovForeignCursor(t *testing.T) {
	m := NewMarkov()
	if _, _, ok := m.Predict(12345); ok {
		t.Fatal("predicted from a foreign cursor")
	}
}

// TestMarkovRowWidthDisplacement: a full row keeps its heavy hitter
// while one-off successors churn through the weakest slot.
func TestMarkovRowWidthDisplacement(t *testing.T) {
	m := NewMarkovConfigured(MarkovConfig{RowWidth: 2, MinProbPct: 1, AgeThreshold: 1 << 30})
	for i := 0; i < 16; i++ {
		observe(m, 1)
		observe(m, 2)
	}
	for b := blockdev.BlockNo(50); b < 60; b++ {
		observe(m, 1)
		observe(m, b)
	}
	row := m.rows[1]
	if row == nil {
		t.Fatal("row for block 1 evicted")
	}
	if len(row.cands) > 2 {
		t.Fatalf("row width %d exceeds bound 2", len(row.cands))
	}
	cur := observe(m, 1)
	p, _, ok := m.Predict(cur)
	if !ok || p.Request.Offset != 2 {
		t.Fatalf("heavy hitter lost under churn: ok=%v p=%+v", ok, p)
	}
}
