package core

import (
	"testing"
	"testing/quick"

	"repro/internal/blockdev"
)

// Property: under arbitrary request sequences and completion orders,
// a linear driver never has more than MaxOutstanding prefetches in
// flight, and its outstanding counter matches the environment's.
func TestDriverOutstandingInvariantProperty(t *testing.T) {
	f := func(ops []uint32, maxOut8 uint8) bool {
		maxOut := int(maxOut8%3) + 1
		env := newFakeEnv()
		d := NewDriver(DriverConfig{
			Predictor:      NewISPPM(1),
			Mode:           ModeAggressive,
			MaxOutstanding: maxOut,
			File:           1,
			FileBlocks:     256,
			Env:            env,
		})
		now := Tick(1)
		for _, op := range ops {
			switch op % 3 {
			case 0: // user request at a pseudo-random position
				off := blockdev.BlockNo(op >> 4 % 256)
				size := int32(op>>12%4) + 1
				blk := blockdev.BlockID{File: 1, Block: off}
				d.OnUserRequest(Request{Offset: off, Size: size}, now, env.cache[blk])
			case 1: // a prefetch completes
				env.completeOne()
			case 2: // the file is closed
				d.StopChain()
			}
			now++
			if d.Outstanding() > maxOut {
				return false
			}
			// Count live (non-orphaned) in-flight ops.
			live := 0
			for _, ifl := range env.inflight {
				if !ifl.cancelled() {
					live++
				}
			}
			if live > maxOut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: IS_PPM never panics and produces in-range speculative
// cursors for arbitrary observation sequences, including pathological
// offsets and sizes.
func TestISPPMRobustnessProperty(t *testing.T) {
	f := func(offs []uint16, order8 uint8) bool {
		order := int(order8%3) + 1
		m := NewISPPMSized(order, 64)
		var cur Cursor
		for i, o := range offs {
			r := Request{Offset: blockdev.BlockNo(o % 4096), Size: int32(o%7) + 1}
			cur = m.Observe(r, Tick(i+1))
		}
		if len(offs) == 0 {
			return true
		}
		// Walk the speculative chain a while; every step must either
		// produce a prediction or stop, never loop in the same cursor
		// with identical output forever... we just require no panic
		// and well-formed sizes.
		for i := 0; i < 32; i++ {
			p, next, ok := m.Predict(cur)
			if !ok {
				break
			}
			if p.Size < 1 {
				return false
			}
			cur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: OBA's speculative chain is strictly increasing and gapless.
func TestOBAChainMonotoneProperty(t *testing.T) {
	f := func(start uint16, size8 uint8, steps uint8) bool {
		o := NewOBA()
		size := int32(size8%16) + 1
		cur := o.Observe(Request{Offset: blockdev.BlockNo(start), Size: size}, 1)
		expect := blockdev.BlockNo(start) + blockdev.BlockNo(size)
		for i := 0; i < int(steps%40); i++ {
			p, next, ok := o.Predict(cur)
			if !ok || p.Offset != expect || p.Size != 1 {
				return false
			}
			expect++
			cur = next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
