package core

import (
	"repro/internal/blockdev"
)

// OBA is the One-Block-Ahead predictor (§2.1): after a request ending
// at block i, it predicts block i+1. It exploits spatial locality
// only; it is the most widely used prefetching rule in sequential and
// parallel file systems and serves as the paper's conservative
// baseline. Its aggressive form reads sequentially from the last
// requested block to the end of the file.
type OBA struct {
	seen bool
	last Request
}

// obaCursor is the position after some (real or speculative) request:
// the next sequential block to predict.
type obaCursor struct {
	next blockdev.BlockNo
}

// NewOBA returns a fresh OBA predictor.
func NewOBA() *OBA { return &OBA{} }

// Name identifies the algorithm.
func (*OBA) Name() string { return "OBA" }

// Observe records a user request; OBA keeps no history beyond the last
// request's end.
func (o *OBA) Observe(r Request, _ Tick) Cursor {
	o.seen = true
	o.last = r
	return obaCursor{next: r.End()}
}

// Predict returns the single block following the cursor.
func (o *OBA) Predict(c Cursor) (Prediction, Cursor, bool) {
	cur, ok := c.(obaCursor)
	if !ok {
		return Prediction{}, nil, false
	}
	p := Prediction{Request: Request{Offset: cur.next, Size: 1}}
	return p, obaCursor{next: cur.next + 1}, true
}
