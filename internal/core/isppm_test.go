package core

import (
	"testing"

	"repro/internal/blockdev"
)

// paperPattern is the access pattern of the paper's Figure 1 in
// 0-indexed blocks: a 2-block request, a 3-block request 3 blocks
// further, a 2-block request 5 blocks further, repeating.
func paperPattern(n int) []Request {
	reqs := []Request{{Offset: 0, Size: 2}}
	off := blockdev.BlockNo(0)
	for len(reqs) < n {
		off += 3
		reqs = append(reqs, Request{Offset: off, Size: 3})
		if len(reqs) == n {
			break
		}
		off += 5
		reqs = append(reqs, Request{Offset: off, Size: 2})
	}
	return reqs
}

// feed observes the requests in order at times 1, 2, 3, ... and
// returns the final cursor.
func feed(p Predictor, reqs []Request) Cursor {
	var cur Cursor
	for i, r := range reqs {
		cur = p.Observe(r, Tick(i+1))
	}
	return cur
}

func TestISPPMBuildsPaperFigure2Graph(t *testing.T) {
	m := NewISPPM(1)
	reqs := paperPattern(5) // t1..t5 of Figure 2
	feed(m, reqs)
	// Nodes (I=3,S=3) and (I=5,S=2) must exist with mutual links.
	if m.NodeCount() != 2 {
		t.Fatalf("graph has %d nodes, want 2", m.NodeCount())
	}
	i1, s1, ok := m.MostRecentLink([][2]int32{{3, 3}})
	if !ok || i1 != 5 || s1 != 2 {
		t.Errorf("link from (3,3) = (%d,%d,%v), want (5,2,true)", i1, s1, ok)
	}
	i2, s2, ok := m.MostRecentLink([][2]int32{{5, 2}})
	if !ok || i2 != 3 || s2 != 3 {
		t.Errorf("link from (5,2) = (%d,%d,%v), want (3,3,true)", i2, s2, ok)
	}
}

func TestISPPMPredictsPaperFifthRequest(t *testing.T) {
	// §2.2: after the fourth request the system predicts the fifth
	// from node (I=3,S=3): jump 5 from the fourth request's offset and
	// read 2 blocks.
	m := NewISPPM(1)
	reqs := paperPattern(4)
	cur := feed(m, reqs)
	p, _, ok := m.Predict(cur)
	if !ok {
		t.Fatal("no prediction after four requests")
	}
	if p.Fallback {
		t.Error("graph prediction marked as fallback")
	}
	want := Request{Offset: reqs[3].Offset + 5, Size: 2}
	if p.Request != want {
		t.Errorf("predicted %v, want %v", p.Request, want)
	}
}

func TestISPPMChainWalksWholePattern(t *testing.T) {
	// Once the pattern is learned, speculative prediction must follow
	// it indefinitely: (…,+3,3 blocks), (…,+5,2 blocks), …
	m := NewISPPM(1)
	reqs := paperPattern(6)
	cur := feed(m, reqs)
	// Last observed request is reqs[5] = 3-block request; the chain
	// must continue +5/2, +3/3, +5/2 …
	wantOffsets := []blockdev.BlockNo{
		reqs[5].Offset + 5,
		reqs[5].Offset + 5 + 3,
		reqs[5].Offset + 5 + 3 + 5,
	}
	wantSizes := []int32{2, 3, 2}
	for i := range wantOffsets {
		var p Prediction
		var ok bool
		p, cur, ok = m.Predict(cur)
		if !ok {
			t.Fatalf("chain died at step %d", i)
		}
		if p.Fallback {
			t.Fatalf("step %d fell back to OBA", i)
		}
		if p.Offset != wantOffsets[i] || p.Size != wantSizes[i] {
			t.Errorf("step %d: predicted %v, want [%d,+%d]", i, p.Request, wantOffsets[i], wantSizes[i])
		}
	}
}

func TestISPPMThirdOrderBuildsFigure3Graph(t *testing.T) {
	// Figure 3: the 3rd-order predictor's nodes are the two
	// alternating 3-pair histories linked to each other.
	m := NewISPPM(3)
	feed(m, paperPattern(8))
	if m.NodeCount() != 2 {
		t.Fatalf("3rd-order graph has %d nodes, want 2", m.NodeCount())
	}
	// History (3,3),(5,2),(3,3) must link to a node ending (5,2).
	i, s, ok := m.MostRecentLink([][2]int32{{3, 3}, {5, 2}, {3, 3}})
	if !ok || i != 5 || s != 2 {
		t.Errorf("link = (%d,%d,%v), want (5,2,true)", i, s, ok)
	}
	i, s, ok = m.MostRecentLink([][2]int32{{5, 2}, {3, 3}, {5, 2}})
	if !ok || i != 3 || s != 3 {
		t.Errorf("link = (%d,%d,%v), want (3,3,true)", i, s, ok)
	}
}

func TestISPPMThirdOrderPredicts(t *testing.T) {
	m := NewISPPM(3)
	reqs := paperPattern(8)
	cur := feed(m, reqs)
	p, _, ok := m.Predict(cur)
	if !ok || p.Fallback {
		t.Fatalf("3rd-order prediction failed (ok=%v fallback=%v)", ok, p.Fallback)
	}
	// reqs[7] is a 3-block request; next is +5, 2 blocks.
	want := Request{Offset: reqs[7].Offset + 5, Size: 2}
	if p.Request != want {
		t.Errorf("predicted %v, want %v", p.Request, want)
	}
}

func TestISPPMFirstRequestFallsBack(t *testing.T) {
	m := NewISPPM(1)
	cur := m.Observe(Request{Offset: 7, Size: 2}, 1)
	p, _, ok := m.Predict(cur)
	if !ok {
		t.Fatal("no prediction at cold start")
	}
	if !p.Fallback {
		t.Error("cold-start prediction not marked fallback")
	}
	if p.Offset != 9 || p.Size != 1 {
		t.Errorf("fallback predicted %v, want [9,+1] (OBA rule)", p.Request)
	}
}

func TestISPPMFallbackChainIsSequential(t *testing.T) {
	m := NewISPPM(2)
	cur := m.Observe(Request{Offset: 0, Size: 4}, 1)
	offsets := []blockdev.BlockNo{}
	for i := 0; i < 3; i++ {
		var p Prediction
		var ok bool
		p, cur, ok = m.Predict(cur)
		if !ok || !p.Fallback {
			t.Fatalf("fallback chain broke at %d", i)
		}
		offsets = append(offsets, p.Offset)
	}
	want := []blockdev.BlockNo{4, 5, 6}
	for i := range want {
		if offsets[i] != want[i] {
			t.Errorf("fallback chain = %v, want %v", offsets, want)
		}
	}
}

func TestISPPMMostRecentLinkWins(t *testing.T) {
	// Teach (0,1)->(10,1) first, then (0,1)->(20,1): the newer link
	// must drive the prediction (the paper's MRU rule, not counts).
	m := NewISPPM(1)
	m.Observe(Request{Offset: 0, Size: 1}, 1)
	m.Observe(Request{Offset: 0, Size: 1}, 2)  // pair (0,1)
	m.Observe(Request{Offset: 10, Size: 1}, 3) // (0,1) -> (10,1)
	// Re-establish state (0,1): offset goes 10 -> 10.
	m.Observe(Request{Offset: 10, Size: 1}, 4)        // (0,1) after (10,1)
	cur := m.Observe(Request{Offset: 30, Size: 1}, 5) // (0,1) -> (20,1) newer
	// Current pair is (20,1); teach nothing more. Build state (0,1):
	cur = m.Observe(Request{Offset: 30, Size: 1}, 6) // pair (0,1)
	p, _, ok := m.Predict(cur)
	if !ok || p.Fallback {
		t.Fatalf("prediction failed: ok=%v fallback=%v", ok, p.Fallback)
	}
	if p.Offset != 50 {
		t.Errorf("predicted offset %d, want 50 (MRU link +20, not +10)", p.Offset)
	}
}

func TestISPPMRepeatedLinkRefreshesTimestamp(t *testing.T) {
	// Re-traversing an old link must make it most recent again.
	m := NewISPPM(1)
	m.Observe(Request{Offset: 0, Size: 1}, 1)
	m.Observe(Request{Offset: 0, Size: 1}, 2)  // (0,1)
	m.Observe(Request{Offset: 10, Size: 1}, 3) // (0,1)->(10,1) @3
	m.Observe(Request{Offset: 10, Size: 1}, 4) // (10,1)... pair (0,1)
	m.Observe(Request{Offset: 30, Size: 1}, 5) // (0,1)->(20,1) @5
	m.Observe(Request{Offset: 30, Size: 1}, 6) // pair (0,1)
	m.Observe(Request{Offset: 40, Size: 1}, 7) // (0,1)->(10,1) @7 refresh
	cur := m.Observe(Request{Offset: 40, Size: 1}, 8)
	p, _, _ := m.Predict(cur)
	if p.Offset != 50 {
		t.Errorf("predicted offset %d, want 50 (refreshed +10 link)", p.Offset)
	}
}

func TestISPPMPredictsNeverAccessedBlocks(t *testing.T) {
	// The key difference from block-PPM (§2.2): interval prediction
	// extrapolates to blocks never seen before.
	m := NewISPPM(1)
	var cur Cursor
	off := blockdev.BlockNo(0)
	for i := 0; i < 6; i++ {
		cur = m.Observe(Request{Offset: off, Size: 1}, Tick(i+1))
		off += 100
	}
	p, _, ok := m.Predict(cur)
	if !ok || p.Fallback {
		t.Fatal("stride not learned")
	}
	if p.Offset != 600 {
		t.Errorf("predicted %d, want 600 (never-accessed block)", p.Offset)
	}
}

func TestISPPMNegativeIntervals(t *testing.T) {
	// A backward-jumping pattern must be representable.
	m := NewISPPM(1)
	seq := []Request{{100, 1}, {50, 1}, {100, 1}, {50, 1}, {100, 1}}
	var cur Cursor
	for i, r := range seq {
		cur = m.Observe(r, Tick(i+1))
	}
	p, _, ok := m.Predict(cur)
	if !ok || p.Fallback {
		t.Fatal("alternating pattern not learned")
	}
	if p.Offset != 50 {
		t.Errorf("predicted %d, want 50 (backward jump)", p.Offset)
	}
}

func TestISPPMNodeCapBoundsGraph(t *testing.T) {
	m := NewISPPMSized(1, 4)
	// Random-ish walk creating many distinct (interval, size) pairs.
	off := blockdev.BlockNo(0)
	for i := 1; i <= 100; i++ {
		m.Observe(Request{Offset: off, Size: int32(i%7 + 1)}, Tick(i))
		off += blockdev.BlockNo(i % 13)
	}
	if m.NodeCount() > 4 {
		t.Errorf("graph grew to %d nodes despite cap 4", m.NodeCount())
	}
}

func TestISPPMConstructorValidation(t *testing.T) {
	for _, order := range []int{0, -1, MaxOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewISPPM(%d) did not panic", order)
				}
			}()
			NewISPPM(order)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewISPPMSized(1,0) did not panic")
			}
		}()
		NewISPPMSized(1, 0)
	}()
}

func TestISPPMName(t *testing.T) {
	if NewISPPM(1).Name() != "IS_PPM:1" || NewISPPM(3).Name() != "IS_PPM:3" {
		t.Error("names wrong")
	}
	if NewISPPM(2).Order() != 2 {
		t.Error("Order wrong")
	}
}

func TestISPPMRejectsForeignCursor(t *testing.T) {
	m := NewISPPM(1)
	if _, _, ok := m.Predict(obaCursor{}); ok {
		t.Error("IS_PPM accepted a foreign cursor")
	}
}

func TestISPPMMostRecentLinkWrongOrder(t *testing.T) {
	m := NewISPPM(2)
	if _, _, ok := m.MostRecentLink([][2]int32{{1, 1}}); ok {
		t.Error("MostRecentLink accepted wrong-length history")
	}
}

func TestISPPMSpeculativeCursorDoesNotMutateGraph(t *testing.T) {
	m := NewISPPM(1)
	cur := feed(m, paperPattern(5))
	before := m.NodeCount()
	for i := 0; i < 10; i++ {
		_, cur, _ = m.Predict(cur)
	}
	if m.NodeCount() != before {
		t.Errorf("speculative walk changed graph: %d -> %d nodes", before, m.NodeCount())
	}
}

func TestISPPMMostProbableLinkPolicy(t *testing.T) {
	// Teach (0,1)->(10,1) twice and (0,1)->(20,1) once (most recent).
	// The most-probable policy must pick +10, the MRU policy +20.
	teach := func() *ISPPM {
		m := NewISPPM(1)
		m.Observe(Request{Offset: 0, Size: 1}, 1)
		m.Observe(Request{Offset: 0, Size: 1}, 2)  // pair (0,1)
		m.Observe(Request{Offset: 10, Size: 1}, 3) // (0,1)->(10,1) #1
		m.Observe(Request{Offset: 10, Size: 1}, 4) // pair (0,1)
		m.Observe(Request{Offset: 20, Size: 1}, 5) // (0,1)->(10,1) #2
		m.Observe(Request{Offset: 20, Size: 1}, 6) // pair (0,1)
		m.Observe(Request{Offset: 40, Size: 1}, 7) // (0,1)->(20,1) #1, most recent
		return m
	}
	cursor := isppmCursor{hist: histKey{n: 1, p: [MaxOrder]pair{{0, 1}}}, lastOffset: 100, lastSize: 1}

	mru := teach()
	p, _, ok := mru.Predict(cursor)
	if !ok || p.Offset != 120 {
		t.Errorf("MRU policy predicted offset %d (ok=%v), want 120", p.Offset, ok)
	}
	prob := teach()
	prob.SetLinkPolicy(MostProbableLinkPolicy)
	p, _, ok = prob.Predict(cursor)
	if !ok || p.Offset != 110 {
		t.Errorf("most-probable policy predicted offset %d (ok=%v), want 110", p.Offset, ok)
	}
}

func TestISPPMNoFallback(t *testing.T) {
	m := NewISPPM(1)
	m.SetFallback(false)
	cur := m.Observe(Request{Offset: 0, Size: 2}, 1)
	if _, _, ok := m.Predict(cur); ok {
		t.Error("prediction produced with fallback disabled and empty graph")
	}
	m.SetFallback(true)
	p, _, ok := m.Predict(cur)
	if !ok || !p.Fallback {
		t.Error("fallback re-enable failed")
	}
}

func TestISPPMPatternChangeRelearns(t *testing.T) {
	m := NewISPPM(1)
	// Learn stride 10, then switch to stride 4; after enough new
	// observations the prediction must follow the new stride.
	var cur Cursor
	off := blockdev.BlockNo(0)
	now := Tick(1)
	for i := 0; i < 5; i++ {
		cur = m.Observe(Request{Offset: off, Size: 1}, now)
		off += 10
		now++
	}
	for i := 0; i < 5; i++ {
		cur = m.Observe(Request{Offset: off, Size: 1}, now)
		off += 4
		now++
	}
	p, _, ok := m.Predict(cur)
	if !ok || p.Fallback {
		t.Fatal("no prediction after pattern change")
	}
	if p.Offset != off {
		t.Errorf("predicted %d, want %d (new stride 4)", p.Offset, off)
	}
}
