package core

import (
	"testing"

	"repro/internal/blockdev"
)

func TestBlockPPMLearnsRepeatedSequence(t *testing.T) {
	m := NewBlockPPM(1)
	// Walk blocks 0..4 twice; after the first pass the successor of
	// each block is known.
	var cur Cursor
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < 5; b++ {
			cur = m.Observe(Request{Offset: blockdev.BlockNo(b), Size: 1}, Tick(pass*5+b+1))
		}
	}
	p, _, ok := m.Predict(cur)
	if !ok {
		t.Fatal("no prediction after two passes")
	}
	// History ends at block 4; on the second pass nothing followed 4
	// yet except... pass 1's 4 was followed by pass 2's 0.
	if p.Offset != 0 || p.Size != 1 {
		t.Errorf("predicted %v, want [0,+1] (the wrap-around)", p.Request)
	}
}

func TestBlockPPMCannotPredictFreshBlocks(t *testing.T) {
	// The paper's §2.2 point: a regular stride over never-accessed
	// blocks predicts nothing under block-PPM, while IS_PPM
	// extrapolates it exactly.
	bp := NewBlockPPM(1)
	is := NewISPPM(1)
	var bpCur, isCur Cursor
	for i := 0; i < 6; i++ {
		r := Request{Offset: blockdev.BlockNo(i * 10), Size: 1}
		bpCur = bp.Observe(r, Tick(i+1))
		isCur = is.Observe(r, Tick(i+1))
	}
	if _, _, ok := bp.Predict(bpCur); ok {
		t.Error("block-PPM predicted a never-accessed block")
	}
	p, _, ok := is.Predict(isCur)
	if !ok || p.Fallback || p.Offset != 60 {
		t.Errorf("IS_PPM failed to extrapolate the stride: %+v ok=%v", p, ok)
	}
}

func TestBlockPPMMostProbableWins(t *testing.T) {
	m := NewBlockPPM(1)
	// After block 5: block 6 twice, block 9 once.
	seq := []blockdev.BlockNo{5, 6, 5, 9, 5, 6}
	var cur Cursor
	for i, b := range seq {
		cur = m.Observe(Request{Offset: b, Size: 1}, Tick(i+1))
	}
	cur = m.Observe(Request{Offset: 5, Size: 1}, 10)
	p, _, ok := m.Predict(cur)
	if !ok || p.Offset != 6 {
		t.Errorf("predicted %v, want block 6 (2 traversals vs 1)", p.Request)
	}
	_ = cur
}

func TestBlockPPMSpansObserveBlockByBlock(t *testing.T) {
	m := NewBlockPPM(1)
	m.Observe(Request{Offset: 0, Size: 4}, 1) // blocks 0,1,2,3
	cur := m.Observe(Request{Offset: 4, Size: 1}, 2)
	p, _, ok := m.Predict(cur)
	// 4 has no successor yet; but 3's successor is 4 etc. History ends
	// at 4: nothing follows → no prediction.
	if ok {
		t.Errorf("predicted %v after unseen tail", p.Request)
	}
	// Re-walk: now 4's successor is known.
	m.Observe(Request{Offset: 0, Size: 4}, 3)
	cur = m.Observe(Request{Offset: 4, Size: 1}, 4)
	p, _, ok = m.Predict(cur)
	if !ok || p.Offset != 0 {
		t.Errorf("predicted %v, want wrap to 0", p.Request)
	}
}

func TestBlockPPMChainWalk(t *testing.T) {
	m := NewBlockPPM(1)
	for pass := 0; pass < 2; pass++ {
		for b := 0; b < 6; b++ {
			m.Observe(Request{Offset: blockdev.BlockNo(b), Size: 1}, Tick(pass*6+b+1))
		}
	}
	cur := m.Observe(Request{Offset: 0, Size: 1}, 20)
	want := []blockdev.BlockNo{1, 2, 3, 4}
	for i, w := range want {
		var p Prediction
		var ok bool
		p, cur, ok = m.Predict(cur)
		if !ok || p.Offset != w {
			t.Fatalf("chain step %d: %+v ok=%v, want block %d", i, p.Request, ok, w)
		}
	}
}

func TestBlockPPMValidation(t *testing.T) {
	for _, order := range []int{0, MaxOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %d accepted", order)
				}
			}()
			NewBlockPPM(order)
		}()
	}
	if NewBlockPPM(2).Name() != "BlockPPM:2" || NewBlockPPM(2).Order() != 2 {
		t.Error("identity accessors wrong")
	}
}

func TestBlockPPMRejectsForeignCursor(t *testing.T) {
	m := NewBlockPPM(1)
	if _, _, ok := m.Predict(obaCursor{}); ok {
		t.Error("foreign cursor accepted")
	}
}

func TestBlockPPMNodeCapBounds(t *testing.T) {
	m := NewBlockPPM(1)
	m.maxNodes = 8
	for i := 0; i < 100; i++ {
		m.Observe(Request{Offset: blockdev.BlockNo(i * 7 % 97), Size: 1}, Tick(i+1))
	}
	if m.NodeCount() > 8 {
		t.Errorf("graph grew to %d nodes despite cap", m.NodeCount())
	}
}
