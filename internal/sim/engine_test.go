package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Duration{50, 10, 30, 20, 40} {
		d := d
		e.After(d, func(e *Engine) { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of submission order: %v", order)
		}
	}
}

func TestEngineClockAdvancesMonotonically(t *testing.T) {
	e := NewEngine(7)
	last := Time(-1)
	var depth int
	var spawn func(*Engine)
	spawn = func(e *Engine) {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
		if depth < 100 {
			depth++
			e.After(Duration(e.RNG().Intn(50)), spawn)
		}
	}
	e.After(0, spawn)
	e.Run()
	if e.Fired() != 101 {
		t.Fatalf("fired %d events, want 101", e.Fired())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(100, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(*Engine) {})
	})
	e.Run()
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.After(1, nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(*Engine) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	id := e.After(10, func(*Engine) { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling twice, or cancelling a fired event, must be harmless.
	e.Cancel(id)
	id2 := e.After(5, func(*Engine) {})
	e.Run()
	e.Cancel(id2)
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine(1)
	var tick func(*Engine)
	tick = func(e *Engine) { e.After(1, tick) } // unbounded chain
	e.After(0, tick)
	if e.RunLimit(1000) {
		t.Error("RunLimit reported drained queue for an infinite chain")
	}
	if e.Fired() != 1000 {
		t.Errorf("fired %d, want 1000", e.Fired())
	}
}

func TestEngineReentrantRunPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(1, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []Time {
		e := NewEngine(seed)
		var times []Time
		var spawn func(*Engine)
		n := 0
		spawn = func(e *Engine) {
			times = append(times, e.Now())
			if n < 200 {
				n++
				e.After(Duration(e.RNG().Intn(1000)+1), spawn)
			}
		}
		e.After(0, spawn)
		e.Run()
		return times
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 8 KB at 10 MB/s = 8192/1e7 s = 819.2 us.
	got := TransferTime(8192, 10)
	want := Duration(819200)
	if got != want {
		t.Errorf("TransferTime(8192, 10) = %v, want %v", got, want)
	}
	if TransferTime(0, 10) != 0 {
		t.Error("zero bytes should take zero time")
	}
}

func TestTransferTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero bandwidth did not panic")
		}
	}()
	TransferTime(1, 0)
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(Milliseconds(1.5))
	if tm != Time(1_500_000) {
		t.Errorf("1.5 ms = %d ns, want 1500000", tm)
	}
	if tm.Sub(Time(500_000)) != Duration(1_000_000) {
		t.Error("Sub wrong")
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Error("Before/After wrong")
	}
	if Milliseconds(1).Milliseconds() != 1 {
		t.Error("Milliseconds round trip failed")
	}
	if Seconds(2).Seconds() != 2 {
		t.Error("Seconds round trip failed")
	}
	if Microseconds(3).Microseconds() != 3 {
		t.Error("Microseconds round trip failed")
	}
}

// Property: for any batch of events with arbitrary non-negative delays,
// the engine fires them all in non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(99)
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d), func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
