package sim

import (
	"container/heap"
	"fmt"
)

// Handler is the callback invoked when an event fires. It receives the
// engine so that it can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled callback. seq breaks ties between events
// scheduled for the same instant: events fire in the order they were
// scheduled, which keeps the simulation deterministic.
type event struct {
	at   Time
	seq  uint64
	fn   Handler
	dead bool // cancelled
	idx  int  // heap index, maintained by eventQueue
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// eventQueue is a binary min-heap ordered by (time, sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation core. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *RNG
	fired   uint64
	running bool
	tracer  Tracer
}

// NewEngine returns an engine whose clock starts at zero and whose
// random stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random-number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired returns the number of events executed so far, useful for
// progress accounting and runaway detection in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past is
// a programming error and panics, because it would silently corrupt
// causality.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d after the current time. A negative delay
// panics.
func (e *Engine) After(d Duration, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.dead = true
	}
}

// Run executes events in time order until the queue is empty and
// returns the final clock value.
func (e *Engine) Run() Time {
	return e.RunUntil(func() bool { return false })
}

// RunLimit executes at most maxEvents events, returning true if the
// queue drained before the limit was reached. It guards tests against
// accidental infinite event loops.
func (e *Engine) RunLimit(maxEvents uint64) bool {
	start := e.fired
	e.RunUntil(func() bool { return e.fired-start >= maxEvents })
	return len(e.queue) == 0
}

// RunUntil executes events in time order until the queue drains or
// stop returns true (checked before each event). It returns the clock.
func (e *Engine) RunUntil(stop func() bool) Time {
	if e.running {
		panic("sim: Run called reentrantly from an event handler")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		if stop() {
			break
		}
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		if e.tracer != nil {
			e.tracer.Record(TraceRecord{At: ev.at, Kind: TraceEventFired, Seq: ev.seq})
		}
		ev.fn(e)
	}
	return e.now
}
