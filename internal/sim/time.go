// Package sim implements a deterministic discrete-event simulation
// engine: a virtual clock, a time-ordered event queue with stable
// tie-breaking, a seeded random-number generator, and service-queue
// resources with non-preemptive priorities.
//
// The engine is single-threaded by design: given the same seed and the
// same sequence of Schedule calls, a simulation produces bit-identical
// results on every run, which is essential for reproducing the paper's
// experiments.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in integer nanoseconds
// since the start of the simulation. Using integers (rather than
// float64 seconds) keeps event ordering exact and platform-independent.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept as a
// separate type from Time so that the compiler catches point/span
// confusion (Time+Duration is meaningful, Time+Time is not).
type Duration int64

// Convenient duration units, mirroring the paper's parameter units
// (microseconds for startups, milliseconds for disk seeks).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of
// milliseconds; the paper reports read latencies in this unit.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time using Go duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration using Go duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Microseconds constructs a Duration from a (possibly fractional)
// count of microseconds, the unit used by the paper's startup
// parameters in Table 1.
func Microseconds(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Milliseconds constructs a Duration from a (possibly fractional)
// count of milliseconds, the unit used by the paper's disk seek
// parameters in Table 1.
func Milliseconds(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Seconds constructs a Duration from a count of seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// TransferTime returns the time needed to move size bytes at the given
// bandwidth in MB/s (decimal megabytes, as in the paper's Table 1).
// A non-positive bandwidth is a configuration error and panics.
func TransferTime(sizeBytes int64, mbPerSec float64) Duration {
	if mbPerSec <= 0 {
		panic(fmt.Sprintf("sim: non-positive bandwidth %v MB/s", mbPerSec))
	}
	bytesPerSec := mbPerSec * 1e6
	return Duration(float64(sizeBytes) / bytesPerSec * float64(Second))
}
