package sim

import "container/heap"

// Priority orders requests contending for a Resource. Lower numeric
// values are served first. The paper gives prefetch I/O strictly lower
// priority than user I/O ("Prefetching a block will never be done if
// other operations are waiting to be done on the same disk").
type Priority int

// The two priority levels used by the file systems.
const (
	PriorityUser     Priority = 0 // user-requested reads and writes
	PriorityPrefetch Priority = 1 // speculative prefetch reads
)

// Request is one unit of work queued on a Resource.
type Request struct {
	// Service is how long the resource is busy processing the request.
	Service Duration
	// Priority selects the queue class; within a class requests are
	// FCFS by enqueue time.
	Priority Priority
	// Done is invoked when service completes, with the completion time.
	Done func(e *Engine, at Time)
	// Cancelled, if it returns true at dispatch time, causes the
	// request to be dropped without service. Aggressive prefetchers use
	// this to abandon stale prefetches still sitting in disk queues.
	Cancelled func() bool

	seq     uint64
	idx     int
	startCB func(e *Engine, at Time)
}

// reqQueue is a min-heap over (priority, seq): strict priority with
// FCFS inside each class.
type reqQueue []*Request

func (q reqQueue) Len() int { return len(q) }
func (q reqQueue) Less(i, j int) bool {
	if q[i].Priority != q[j].Priority {
		return q[i].Priority < q[j].Priority
	}
	return q[i].seq < q[j].seq
}
func (q reqQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *reqQueue) Push(x any) {
	r := x.(*Request)
	r.idx = len(*q)
	*q = append(*q, r)
}
func (q *reqQueue) Pop() any {
	old := *q
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.idx = -1
	*q = old[:n-1]
	return r
}

// Resource models a device that serves one request at a time:
// a disk arm, a network port, a server CPU. Service is non-preemptive:
// a low-priority request already in service runs to completion even if
// a high-priority request arrives.
type Resource struct {
	name    string
	engine  *Engine
	queue   reqQueue
	seq     uint64
	busy    bool
	busyEnd Time

	// accounting
	served    uint64
	perClass  map[Priority]uint64
	busyTime  Duration
	busyClass map[Priority]Duration
	waitTime  Duration
	enqueueAt map[*Request]Time
	dropped   uint64

	// queue-depth accounting: high-water mark plus the time integral of
	// the waiting-queue length, from which the time-weighted mean depth
	// follows. qLast is the instant of the last length change.
	maxQueue  int
	qIntegral int64 // request-nanoseconds
	qLast     Time
}

// NewResource creates an idle resource attached to the engine.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{
		name:      name,
		engine:    e,
		perClass:  make(map[Priority]uint64),
		busyClass: make(map[Priority]Duration),
		enqueueAt: make(map[*Request]Time),
	}
}

// Name returns the label given at construction.
func (r *Resource) Name() string { return r.name }

// QueueLen returns the number of requests waiting (not in service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Busy reports whether a request is currently in service.
func (r *Resource) Busy() bool { return r.busy }

// Served returns the number of requests completed.
func (r *Resource) Served() uint64 { return r.served }

// ServedClass returns the number of completed requests of class p.
func (r *Resource) ServedClass(p Priority) uint64 { return r.perClass[p] }

// Dropped returns the number of requests abandoned via Cancelled.
func (r *Resource) Dropped() uint64 { return r.dropped }

// BusyTime returns the cumulative time the resource spent serving.
func (r *Resource) BusyTime() Duration { return r.busyTime }

// BusyTimeClass returns the cumulative service time spent on requests
// of class p — the split that shows how much of a disk's load is
// speculative prefetch traffic versus demand traffic.
func (r *Resource) BusyTimeClass(p Priority) Duration { return r.busyClass[p] }

// MaxQueueLen returns the waiting-queue high-water mark.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// MeanQueueLen returns the time-weighted mean waiting-queue length up
// to the current virtual time.
func (r *Resource) MeanQueueLen() float64 {
	now := r.engine.Now()
	if now == 0 {
		return 0
	}
	integral := r.qIntegral + int64(len(r.queue))*int64(now.Sub(r.qLast))
	return float64(integral) / float64(now)
}

// accountQueue folds the elapsed interval at the current queue length
// into the integral; call it immediately before any length change.
func (r *Resource) accountQueue(now Time) {
	r.qIntegral += int64(len(r.queue)) * int64(now.Sub(r.qLast))
	r.qLast = now
}

// WaitTime returns the cumulative time requests spent queued before
// service began.
func (r *Resource) WaitTime() Duration { return r.waitTime }

// Utilization returns busy time as a fraction of the elapsed clock.
func (r *Resource) Utilization() float64 {
	now := r.engine.Now()
	if now == 0 {
		return 0
	}
	return r.busyTime.Seconds() / now.Seconds()
}

// Submit enqueues req for service. The request's Done callback fires
// at completion; submission order is remembered for FCFS within a
// priority class.
func (r *Resource) Submit(req *Request) {
	if req.Service < 0 {
		panic("sim: negative service time")
	}
	req.seq = r.seq
	r.seq++
	now := r.engine.Now()
	r.enqueueAt[req] = now
	r.accountQueue(now)
	heap.Push(&r.queue, req)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	if t := r.engine.tracer; t != nil {
		t.Record(TraceRecord{At: now, Kind: TraceEnqueue, Resource: r.name,
			Priority: req.Priority, Service: req.Service, QueueLen: len(r.queue)})
	}
	r.dispatch()
}

// dispatch starts the next request if the resource is idle.
func (r *Resource) dispatch() {
	if r.busy {
		return
	}
	for len(r.queue) > 0 {
		now := r.engine.Now()
		r.accountQueue(now)
		req := heap.Pop(&r.queue).(*Request)
		enq := r.enqueueAt[req]
		delete(r.enqueueAt, req)
		if req.Cancelled != nil && req.Cancelled() {
			r.dropped++
			if t := r.engine.tracer; t != nil {
				t.Record(TraceRecord{At: now, Kind: TraceDrop, Resource: r.name,
					Priority: req.Priority, QueueLen: len(r.queue)})
			}
			continue
		}
		r.waitTime += now.Sub(enq)
		r.busy = true
		r.busyEnd = now.Add(req.Service)
		r.busyTime += req.Service
		r.busyClass[req.Priority] += req.Service
		if t := r.engine.tracer; t != nil {
			t.Record(TraceRecord{At: now, Kind: TraceStart, Resource: r.name,
				Priority: req.Priority, Wait: now.Sub(enq), Service: req.Service,
				QueueLen: len(r.queue)})
		}
		if req.startCB != nil {
			req.startCB(r.engine, now)
		}
		r.engine.At(r.busyEnd, func(e *Engine) {
			r.busy = false
			r.served++
			r.perClass[req.Priority]++
			if t := e.tracer; t != nil {
				t.Record(TraceRecord{At: e.Now(), Kind: TraceDone, Resource: r.name,
					Priority: req.Priority, Service: req.Service, QueueLen: len(r.queue)})
			}
			if req.Done != nil {
				req.Done(e, e.Now())
			}
			r.dispatch()
		})
		return
	}
}
