package sim

import "testing"

// recordingTracer collects every record for inspection.
type recordingTracer struct {
	records []TraceRecord
}

func (t *recordingTracer) Record(r TraceRecord) { t.records = append(t.records, r) }

func (t *recordingTracer) count(k TraceKind) int {
	n := 0
	for _, r := range t.records {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// driveContention queues three requests at once (one prefetch between
// two user-priority ones) plus a cancelled one, then drains.
func driveContention(e *Engine, r *Resource, cancelled *bool) (doneOrder []Priority) {
	e.At(0, func(e *Engine) {
		for _, p := range []Priority{PriorityUser, PriorityPrefetch, PriorityUser} {
			p := p
			r.Submit(&Request{
				Service:  10 * Millisecond,
				Priority: p,
				Done:     func(*Engine, Time) { doneOrder = append(doneOrder, p) },
			})
		}
		r.Submit(&Request{
			Service:   10 * Millisecond,
			Priority:  PriorityPrefetch,
			Cancelled: func() bool { return *cancelled },
			Done:      func(*Engine, Time) { doneOrder = append(doneOrder, PriorityPrefetch) },
		})
		*cancelled = true
	})
	e.Run()
	return doneOrder
}

func TestTracerObservesResourceLifecycle(t *testing.T) {
	e := NewEngine(1)
	tr := &recordingTracer{}
	e.SetTracer(tr)
	res := NewResource(e, "disk0")
	cancelled := false
	order := driveContention(e, res, &cancelled)

	if got, want := len(order), 3; got != want {
		t.Fatalf("completed %d requests, want %d", got, want)
	}
	if order[0] != PriorityUser || order[1] != PriorityUser || order[2] != PriorityPrefetch {
		t.Errorf("priority order violated: %v", order)
	}
	if n := tr.count(TraceEnqueue); n != 4 {
		t.Errorf("enqueue records: %d, want 4", n)
	}
	if n := tr.count(TraceStart); n != 3 {
		t.Errorf("start records: %d, want 3", n)
	}
	if n := tr.count(TraceDone); n != 3 {
		t.Errorf("done records: %d, want 3", n)
	}
	if n := tr.count(TraceDrop); n != 1 {
		t.Errorf("drop records: %d, want 1", n)
	}
	if n := tr.count(TraceEventFired); n == 0 {
		t.Error("no engine event records")
	}
	var last Time
	for _, r := range tr.records {
		if r.At < last {
			t.Fatalf("trace goes backwards: %v after %v", r.At, last)
		}
		last = r.At
	}
}

func TestResourceQueueAndClassAccounting(t *testing.T) {
	e := NewEngine(1)
	res := NewResource(e, "disk0")
	cancelled := false
	driveContention(e, res, &cancelled)

	// Three requests arrive while the first is in service, so the queue
	// peaks at 3 waiting (two live, one soon-cancelled).
	if got := res.MaxQueueLen(); got != 3 {
		t.Errorf("max queue %d, want 3", got)
	}
	if got := res.MeanQueueLen(); got <= 0 {
		t.Errorf("mean queue %v, want > 0", got)
	}
	if got := res.Dropped(); got != 1 {
		t.Errorf("dropped %d, want 1", got)
	}
	user := res.BusyTimeClass(PriorityUser)
	pf := res.BusyTimeClass(PriorityPrefetch)
	if user != 20*Millisecond {
		t.Errorf("user busy time %v, want 20ms", user)
	}
	if pf != 10*Millisecond {
		t.Errorf("prefetch busy time %v, want 10ms", pf)
	}
	if user+pf != res.BusyTime() {
		t.Errorf("class busy times %v+%v do not sum to total %v", user, pf, res.BusyTime())
	}
}

// Tracing must be observation only: the same scenario with and without
// a tracer produces identical accounting.
func TestTracerDoesNotPerturbSimulation(t *testing.T) {
	run := func(withTracer bool) (Time, Duration, float64) {
		e := NewEngine(7)
		if withTracer {
			e.SetTracer(&recordingTracer{})
		}
		res := NewResource(e, "disk0")
		cancelled := false
		driveContention(e, res, &cancelled)
		return e.Now(), res.BusyTime(), res.MeanQueueLen()
	}
	endA, busyA, qA := run(false)
	endB, busyB, qB := run(true)
	if endA != endB || busyA != busyB || qA != qB {
		t.Errorf("tracer changed the run: (%v,%v,%v) vs (%v,%v,%v)",
			endA, busyA, qA, endB, busyB, qB)
	}
}
