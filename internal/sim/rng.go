package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (PCG-XSH-RR, 64-bit state, 32-bit output, extended to 64-bit output
// by pairing draws). It exists instead of math/rand so that simulation
// results are identical across Go releases: the stdlib generator's
// stream is not covered by the compatibility promise, this one is
// frozen here.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator seeded from seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + r.inc
	r.next32()
	return r
}

// Split derives an independent generator from r's stream, for giving
// each simulated entity its own stream without cross-coupling.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
// It is the standard model for inter-arrival gaps in the workload
// generators.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// LogNormal returns a log-normally distributed value where mu and
// sigma are the mean and standard deviation of the underlying normal.
// File-size distributions in both workloads are modelled this way.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal deviate (Box–Muller; one value per
// call keeps the stream simple and deterministic).
func (r *RNG) Normal() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Zipf returns a value in [0, n) drawn from a Zipf-like distribution
// with exponent s (s > 0); smaller indices are more likely. It uses
// inverse-CDF sampling over precomputed weights held by the caller via
// ZipfTable for efficiency; this convenience method recomputes weights
// and is intended for small n or non-critical paths.
func (r *RNG) Zipf(n int, s float64) int {
	t := NewZipfTable(n, s)
	return t.Sample(r)
}

// ZipfTable precomputes the cumulative distribution for Zipf sampling
// over [0, n) with exponent s.
type ZipfTable struct {
	cum []float64
}

// NewZipfTable builds the cumulative weight table. It panics on n <= 0
// or s <= 0.
func NewZipfTable(n int, s float64) *ZipfTable {
	if n <= 0 || s <= 0 {
		panic("sim: invalid Zipf parameters")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfTable{cum: cum}
}

// N returns the size of the table's support.
func (t *ZipfTable) N() int { return len(t.cum) }

// Sample draws one index from the table using r.
func (t *ZipfTable) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
