package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		f := float64(c) / draws
		if math.Abs(f-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %.4f, want ~0.1", i, f)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(17)
	const mean, draws = 50.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > mean*0.02 {
		t.Errorf("Exp mean %.3f, want ~%.1f", got, mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(23)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance %.4f, want ~1", variance)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(2, 1); v <= 0 {
			t.Fatalf("LogNormal returned %v", v)
		}
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(31)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	f := float64(hits) / draws
	if math.Abs(f-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %.4f", f)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestZipfTableSkew(t *testing.T) {
	tab := NewZipfTable(100, 1.0)
	r := NewRNG(37)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := tab.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] || counts[0] <= counts[99] {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[50]=%d counts[99]=%d",
			counts[0], counts[50], counts[99])
	}
	// With s=1, p(0)/p(1) = 2.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("Zipf p(0)/p(1) = %.2f, want ~2", ratio)
	}
	if tab.N() != 100 {
		t.Errorf("N = %d", tab.N())
	}
}

func TestZipfTablePanicsOnBadParams(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipfTable(%d, %v) did not panic", c.n, c.s)
				}
			}()
			NewZipfTable(c.n, c.s)
		}()
	}
}

func TestRNGZipfConvenience(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 100; i++ {
		if v := r.Zipf(5, 1.2); v < 0 || v >= 5 {
			t.Fatalf("Zipf(5) = %d", v)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(55)
	child := parent.Split()
	// The child stream must not merely replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws between parent and child", same)
	}
}

// Property: Intn never escapes its bound for arbitrary positive n.
func TestRNGIntnBoundProperty(t *testing.T) {
	r := NewRNG(61)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
