package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceServesFCFS(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk0")
	var done []Time
	for i := 0; i < 3; i++ {
		r.Submit(&Request{
			Service:  10 * Millisecond,
			Priority: PriorityUser,
			Done:     func(_ *Engine, at Time) { done = append(done, at) },
		})
	}
	e.Run()
	want := []Time{Time(10 * Millisecond), Time(20 * Millisecond), Time(30 * Millisecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("request %d done at %v, want %v", i, done[i], want[i])
		}
	}
	if r.Served() != 3 {
		t.Errorf("served %d, want 3", r.Served())
	}
}

func TestResourcePriorityUserBeforePrefetch(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	var order []string
	// Occupy the resource so the next two requests queue up.
	r.Submit(&Request{Service: 5, Priority: PriorityUser})
	// Prefetch submitted first, user second: user must still win.
	r.Submit(&Request{Service: 5, Priority: PriorityPrefetch,
		Done: func(*Engine, Time) { order = append(order, "prefetch") }})
	r.Submit(&Request{Service: 5, Priority: PriorityUser,
		Done: func(*Engine, Time) { order = append(order, "user") }})
	e.Run()
	if len(order) != 2 || order[0] != "user" || order[1] != "prefetch" {
		t.Errorf("service order = %v, want [user prefetch]", order)
	}
}

func TestResourceNonPreemptive(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	var prefetchDone, userDone Time
	r.Submit(&Request{Service: 100, Priority: PriorityPrefetch,
		Done: func(_ *Engine, at Time) { prefetchDone = at }})
	// User request arrives mid-service; must wait for completion.
	e.After(10, func(*Engine) {
		r.Submit(&Request{Service: 50, Priority: PriorityUser,
			Done: func(_ *Engine, at Time) { userDone = at }})
	})
	e.Run()
	if prefetchDone != 100 {
		t.Errorf("prefetch done at %v, want 100", prefetchDone)
	}
	if userDone != 150 {
		t.Errorf("user done at %v, want 150 (non-preemptive)", userDone)
	}
}

func TestResourceCancelledRequestDropped(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	stale := true
	var fired bool
	r.Submit(&Request{Service: 10, Priority: PriorityUser})
	r.Submit(&Request{
		Service:   10,
		Priority:  PriorityPrefetch,
		Cancelled: func() bool { return stale },
		Done:      func(*Engine, Time) { fired = true },
	})
	e.Run()
	if fired {
		t.Error("cancelled request was served")
	}
	if r.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", r.Dropped())
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10 (no service time for dropped request)", e.Now())
	}
}

func TestResourceAccounting(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	r.Submit(&Request{Service: 10, Priority: PriorityUser})
	r.Submit(&Request{Service: 30, Priority: PriorityPrefetch})
	e.Run()
	if r.BusyTime() != 40 {
		t.Errorf("busy time %v, want 40", r.BusyTime())
	}
	// Second request waited 10 while the first was in service.
	if r.WaitTime() != 10 {
		t.Errorf("wait time %v, want 10", r.WaitTime())
	}
	if r.ServedClass(PriorityUser) != 1 || r.ServedClass(PriorityPrefetch) != 1 {
		t.Error("per-class counts wrong")
	}
	if u := r.Utilization(); u != 1.0 {
		t.Errorf("utilization %v, want 1.0", u)
	}
	if r.Name() != "disk" {
		t.Errorf("name %q", r.Name())
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "disk")
	defer func() {
		if recover() == nil {
			t.Error("negative service did not panic")
		}
	}()
	r.Submit(&Request{Service: -1})
}

// Property: total busy time equals the sum of service times of all
// non-cancelled requests, and the resource never reports Busy once the
// engine drains.
func TestResourceConservationProperty(t *testing.T) {
	f := func(services []uint8, prefetchMask uint64) bool {
		e := NewEngine(5)
		r := NewResource(e, "d")
		var total Duration
		for i, s := range services {
			svc := Duration(s)
			total += svc
			p := PriorityUser
			if prefetchMask&(1<<(uint(i)%64)) != 0 {
				p = PriorityPrefetch
			}
			r.Submit(&Request{Service: svc, Priority: p})
		}
		e.Run()
		return r.BusyTime() == total && !r.Busy() && r.QueueLen() == 0 &&
			r.Served() == uint64(len(services))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
