package sim

// TraceKind classifies one trace record.
type TraceKind int

// Trace record kinds.
const (
	// TraceEventFired marks the engine executing one scheduled event.
	TraceEventFired TraceKind = iota
	// TraceEnqueue marks a request joining a resource queue.
	TraceEnqueue
	// TraceStart marks a request entering service on a resource.
	TraceStart
	// TraceDone marks a request completing service.
	TraceDone
	// TraceDrop marks a request abandoned via its Cancelled hook while
	// still queued.
	TraceDrop
)

// String names the kind (the "kind" field of the JSONL trace output).
func (k TraceKind) String() string {
	switch k {
	case TraceEventFired:
		return "event"
	case TraceEnqueue:
		return "enqueue"
	case TraceStart:
		return "start"
	case TraceDone:
		return "done"
	case TraceDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// TraceRecord is one observation emitted through a Tracer: either the
// engine firing an event (a span marker in virtual time) or a resource
// queue transition. All times are virtual, so a trace is bit-identical
// across runs and machines.
type TraceRecord struct {
	// At is the virtual time of the observation.
	At Time
	// Kind classifies the record.
	Kind TraceKind
	// Resource names the resource ("disk3", "port0"); empty for
	// engine-level records.
	Resource string
	// Priority is the request's class (resource records only).
	Priority Priority
	// Wait is the time the request spent queued (TraceStart only).
	Wait Duration
	// Service is the request's service time (TraceStart, TraceDone).
	Service Duration
	// QueueLen is the number of requests waiting after the transition
	// (resource records only).
	QueueLen int
	// Seq is the engine event sequence number (TraceEventFired only).
	Seq uint64
}

// Tracer receives trace records. Implementations must not schedule
// events or otherwise feed back into the simulation: tracing is
// observation only, so enabling it cannot change any simulated number.
type Tracer interface {
	Record(TraceRecord)
}

// SetTracer installs (or, with nil, removes) the engine's tracer.
// Resources attached to the engine report through it as well.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracer returns the installed tracer, nil if none.
func (e *Engine) Tracer() Tracer { return e.tracer }
