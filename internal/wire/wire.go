// Package wire defines the lapcache wire protocol shared by the
// server (internal/lapcache) and the client (internal/lapclient).
//
// Two encodings travel over one TCP port:
//
//   - Protocol 1 (JSON): newline-delimited JSON objects, one request
//     and one response per line, block payloads base64-inside-JSON.
//     Every connection starts in this mode; it remains fully supported
//     for old clients and for debugging (lapget -json).
//   - Protocol 2 (binary): length-prefixed frames with a fixed
//     little-endian header and raw block payloads — no base64, no
//     per-request reflection. A client upgrades a connection by
//     learning the server's "proto_max" from the JSON ping response
//     and then sending a JSON {"op":"upgrade"}; everything after the
//     server's OK line is binary frames in both directions.
//
// Binary frame layout (little-endian):
//
//	offset size field
//	0      1    op       (Op; 1..6, never '{' so a JSON line is unambiguous)
//	1      1    flags    (Flags bitfield)
//	2      1    version  (must be Version)
//	3      1    reserved (must be 0)
//	4      4    seq      (echoed verbatim in the response; client-side matching)
//	8      4    file     (int32 FileID)
//	12     4    offset   (int32 first block)
//	16     4    size     (int32 span length in blocks)
//	20     4    payload  (uint32 byte length of the payload that follows)
//
// The payload carries raw block data for reads (FlagWantData) and
// writes, a UTF-8 error message on failure frames, and a JSON document
// for ping/stats responses (rare, so their encoding does not matter).
//
// # Version skew
//
// The header layout is frozen by the version byte; ops and flags are
// extension points. ParseHeader therefore validates only structure —
// version, reserved byte, payload bound, a nonzero op — and leaves
// unknown op and flag values to the dispatch layer, which answers an
// unrecognized request with an error frame instead of dropping the
// connection. That is what lets a newer peer talk to an older server
// during a rolling upgrade: the new op fails cleanly, the connection
// stays usable, and the caller can fall back. (Peer forwards between
// lapcached nodes rely on this: a mixed-version cluster degrades to
// local service rather than wedging connections.)
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Protocol versions negotiated through the JSON ping ("proto_max").
const (
	ProtoJSON   = 1
	ProtoBinary = 2
)

// Version is the binary frame header version.
const Version = 1

// HeaderSize is the fixed byte length of a binary frame header.
const HeaderSize = 24

// MaxPayload caps a single frame's payload. The decoder rejects
// larger length fields before allocating anything, so a corrupt or
// hostile header cannot balloon memory.
const MaxPayload = 1 << 24 // 16 MiB

// MaxFrame bounds a full frame — and doubles as the cap on one JSON
// line. This is the documented limit the old bufio.Scanner 64 KiB
// default violated: a multi-block WantData read easily exceeds 64 KiB
// once base64-inflated, so both ends size their line readers to
// MaxFrame instead.
const MaxFrame = HeaderSize + MaxPayload

// MaxDataBytes caps the raw block payload of one read or write so
// that even the base64-inflated JSON encoding of the same data fits a
// MaxFrame line with envelope to spare.
const MaxDataBytes = 11 << 20

// Op identifies a request (and is echoed in its response).
type Op uint8

const (
	OpPing  Op = 1
	OpRead  Op = 2
	OpWrite Op = 3
	OpClose Op = 4
	OpStats Op = 5
	// OpOwner asks a clustered server which node owns the frame's file
	// on the consistent-hash ring. The response payload is a JSON
	// document {"owner": addr, "self": bool}; a non-clustered server
	// answers with an error frame.
	OpOwner Op = 6

	opMax = OpOwner
)

// Known reports whether this implementation dispatches the op. Unknown
// ops still parse (the header layout does not depend on them); the
// dispatch layer answers them with an error frame.
func (o Op) Known() bool { return o >= OpPing && o <= opMax }

// String renders the op for error messages.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpClose:
		return "close"
	case OpStats:
		return "stats"
	case OpOwner:
		return "owner"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Flags is the frame flag bitfield.
type Flags uint8

const (
	// FlagWantData (requests) asks a read to return block payloads.
	FlagWantData Flags = 1 << 0
	// FlagOK (responses) marks success; absent, the payload is an
	// error message.
	FlagOK Flags = 1 << 1
	// FlagHit (read responses) reports every requested block was
	// cached on arrival.
	FlagHit Flags = 1 << 2
	// FlagPeer (requests) marks a request forwarded by a cluster peer:
	// the receiver serves it strictly locally and never re-forwards,
	// which is what makes forwarding loop-free even if two nodes
	// momentarily disagree about ring membership.
	FlagPeer Flags = 1 << 3
	// FlagReplica (write requests, with FlagPeer) marks a replica
	// install: the receiver stores the blocks as the file's R=2 copy —
	// no driver feed, no re-replication, never re-forwarded. Both the
	// engine's synchronous replication and the rebalancing handoff
	// push blocks under this flag.
	FlagReplica Flags = 1 << 4
	// FlagReplicated (write responses) reports the write is durably
	// double-homed: the owner installed it locally AND a replica
	// acknowledged the copy. Clients that care about surviving a node
	// kill (the chaos harness's no-lost-acked-write invariant) track
	// exactly the writes acked with this bit.
	FlagReplicated Flags = 1 << 5

	flagsKnown = FlagWantData | FlagOK | FlagHit | FlagPeer | FlagReplica | FlagReplicated
)

// Known reports whether every set bit is a flag this implementation
// defines. Unknown bits still parse; receivers decide per-op whether
// to reject them.
func (f Flags) Known() bool { return f&^flagsKnown == 0 }

// Header is a decoded binary frame header.
type Header struct {
	Op         Op
	Flags      Flags
	Seq        uint32
	File       int32
	Offset     int32
	Size       int32
	PayloadLen uint32
}

// ErrFrameTooLarge reports a length field beyond the protocol limits.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// PutHeader encodes h into dst, which must hold HeaderSize bytes.
func PutHeader(dst []byte, h Header) {
	_ = dst[HeaderSize-1]
	dst[0] = byte(h.Op)
	dst[1] = byte(h.Flags)
	dst[2] = Version
	dst[3] = 0
	binary.LittleEndian.PutUint32(dst[4:], h.Seq)
	binary.LittleEndian.PutUint32(dst[8:], uint32(h.File))
	binary.LittleEndian.PutUint32(dst[12:], uint32(h.Offset))
	binary.LittleEndian.PutUint32(dst[16:], uint32(h.Size))
	binary.LittleEndian.PutUint32(dst[20:], h.PayloadLen)
}

// ParseHeader decodes and validates a frame header structurally. It
// never panics and performs no allocation regardless of input.
//
// Only layout-level properties are enforced here: the version byte,
// the reserved byte, the payload bound and a nonzero op. Unknown op
// and flag values parse successfully — the frame is still framed
// correctly, so the connection can consume its payload and answer
// with an error frame instead of wedging; use Op.Known and
// Flags.Known at dispatch.
func ParseHeader(src []byte) (Header, error) {
	if len(src) < HeaderSize {
		return Header{}, fmt.Errorf("wire: short header: %d bytes, need %d", len(src), HeaderSize)
	}
	var h Header
	h.Op = Op(src[0])
	if h.Op == 0 {
		return Header{}, errors.New("wire: zero op")
	}
	h.Flags = Flags(src[1])
	if src[2] != Version {
		return Header{}, fmt.Errorf("wire: protocol version %d, want %d", src[2], Version)
	}
	if src[3] != 0 {
		return Header{}, fmt.Errorf("wire: nonzero reserved byte %#x", src[3])
	}
	h.Seq = binary.LittleEndian.Uint32(src[4:])
	h.File = int32(binary.LittleEndian.Uint32(src[8:]))
	h.Offset = int32(binary.LittleEndian.Uint32(src[12:]))
	h.Size = int32(binary.LittleEndian.Uint32(src[16:]))
	h.PayloadLen = binary.LittleEndian.Uint32(src[20:])
	if h.PayloadLen > MaxPayload {
		return Header{}, fmt.Errorf("wire: payload length %d: %w", h.PayloadLen, ErrFrameTooLarge)
	}
	return h, nil
}

// ReadHeader reads and validates one frame header from r. scratch
// must hold at least HeaderSize bytes (callers keep one per
// connection so the read path does not allocate).
func ReadHeader(r io.Reader, scratch []byte) (Header, error) {
	if _, err := io.ReadFull(r, scratch[:HeaderSize]); err != nil {
		return Header{}, err
	}
	return ParseHeader(scratch)
}

// ReadPayload reads h's payload into buf, growing it only as far as
// the already-validated PayloadLen. A zero-length payload returns
// buf[:0] without touching r.
func ReadPayload(r io.Reader, h Header, buf []byte) ([]byte, error) {
	n := int(h.PayloadLen)
	if n == 0 {
		return buf[:0], nil
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: payload truncated: %w", err)
	}
	return buf, nil
}

// DecodeFrame reads one complete frame (header + payload) from r.
// buf is an optional reusable payload buffer. Any malformed input
// yields an error — never a panic, never an allocation beyond the
// validated payload length.
func DecodeFrame(r io.Reader, buf []byte) (Header, []byte, error) {
	var scratch [HeaderSize]byte
	h, err := ReadHeader(r, scratch[:])
	if err != nil {
		return Header{}, nil, err
	}
	payload, err := ReadPayload(r, h, buf)
	if err != nil {
		return Header{}, nil, err
	}
	return h, payload, nil
}

// WriteFrame writes a complete frame. h.PayloadLen is overwritten
// with len(payload).
func WriteFrame(w io.Writer, h Header, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	h.PayloadLen = uint32(len(payload))
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], h)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// flushBuffers writes every slice in *v with one vectored write
// (writev when w is a *net.TCPConn; sequential Write calls otherwise,
// which is what keeps per-Write fault interposers working) and then
// restores *v to an empty slice over its ORIGINAL backing array.
// net.Buffers.WriteTo consumes the slice it is called on — it nils
// entries and advances the base pointer — so without the restore a
// reused gather slice would shrink toward zero capacity and every
// subsequent append would allocate.
func flushBuffers(w io.Writer, v *net.Buffers) error {
	saved := *v
	_, err := v.WriteTo(w)
	*v = saved[:0]
	return err
}

// WriteFrameVectored writes one complete frame with a single vectored
// write: the header is encoded into scratch (caller-owned, at least
// HeaderSize bytes) and gathered with payload into one writev — the
// payload bytes go from the caller's buffer to the socket with no
// staging copy. h.PayloadLen is overwritten with len(payload). vec
// must point to a gather slice that persists across calls (a struct
// field, not a local): it is reused, so the steady state allocates
// nothing.
//
// The caller must keep scratch and payload untouched (and any
// refcounted buffer backing payload alive) until the call returns:
// the kernel reads both during the writev syscall.
func WriteFrameVectored(w io.Writer, scratch []byte, h Header, payload []byte, vec *net.Buffers) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	h.PayloadLen = uint32(len(payload))
	PutHeader(scratch, h)
	if len(payload) == 0 {
		_, err := w.Write(scratch[:HeaderSize])
		return err
	}
	*vec = append((*vec)[:0], scratch[:HeaderSize], payload)
	return flushBuffers(w, vec)
}

// FrameBatch accumulates encoded response frames and flushes them
// with one vectored write — the frame-coalescing half of the hot
// path: a pipelined client's K responses cost one writev instead of K
// write syscalls. Headers are encoded into stable per-frame scratch
// arrays owned by the batch; payload slices are gathered by reference,
// so the bytes (and any refcounted buffers backing them) must stay
// alive and untouched until Flush returns. All storage is reused
// across flushes: a warm batch allocates nothing.
//
// A FrameBatch is not safe for concurrent use; callers serialize it
// per connection.
type FrameBatch struct {
	hdrs []hdrArr
	n    int // headers used since the last Flush/Reset
	vec  net.Buffers
}

type hdrArr [HeaderSize]byte

// header hands out the next stable header scratch slice. Growing hdrs
// may move the backing array, but slices already queued in vec keep
// the old array (and its written bytes) alive, so queued frames stay
// intact.
func (b *FrameBatch) header() []byte {
	if b.n == len(b.hdrs) {
		b.hdrs = append(b.hdrs, hdrArr{})
	}
	s := b.hdrs[b.n][:]
	b.n++
	return s
}

// Len reports how many frame headers are queued.
func (b *FrameBatch) Len() int { return b.n }

// AppendFrame queues one complete frame; h.PayloadLen is overwritten
// with len(payload).
func (b *FrameBatch) AppendFrame(h Header, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	h.PayloadLen = uint32(len(payload))
	hs := b.header()
	PutHeader(hs, h)
	b.vec = append(b.vec, hs)
	if len(payload) > 0 {
		b.vec = append(b.vec, payload)
	}
	return nil
}

// AppendHeader queues a frame header whose payload arrives through
// subsequent AppendPayload calls; the caller is responsible for
// setting h.PayloadLen to the payload total it will append.
func (b *FrameBatch) AppendHeader(h Header) {
	hs := b.header()
	PutHeader(hs, h)
	b.vec = append(b.vec, hs)
}

// AppendPayload queues one payload segment for the most recently
// appended header.
func (b *FrameBatch) AppendPayload(p []byte) {
	if len(p) > 0 {
		b.vec = append(b.vec, p)
	}
}

// Flush writes every queued frame with one vectored write and resets
// the batch for reuse. A batch with nothing queued returns nil
// without touching w.
func (b *FrameBatch) Flush(w io.Writer) error {
	if len(b.vec) == 0 {
		b.n = 0
		return nil
	}
	err := flushBuffers(w, &b.vec)
	b.n = 0
	return err
}

// Reset drops queued frames without writing them (connection
// teardown).
func (b *FrameBatch) Reset() {
	b.vec = b.vec[:0]
	b.n = 0
}

// ReadLine reads one newline-terminated JSON line from br, without
// the trailing "\n" (or "\r\n"), refusing lines longer than max — the
// bounded replacement for bufio.Scanner's default 64 KiB token limit
// on both ends of the JSON protocol.
func ReadLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		// ReadSlice returns bufio.ErrBufferFull with a partial chunk
		// when the line outgrows the reader's internal buffer; keep
		// accumulating until the newline or the cap.
		if len(line)+len(chunk) > max {
			return nil, ErrFrameTooLarge
		}
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			if len(line) > 0 && err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	n := len(line) - 1 // strip '\n'
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}
