package wire

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	want := Header{
		Op: OpRead, Flags: FlagWantData | FlagOK | FlagHit,
		Seq: 0xDEADBEEF, File: -3, Offset: 1 << 30, Size: 42, PayloadLen: 8192,
	}
	var buf [HeaderSize]byte
	PutHeader(buf[:], want)
	got, err := ParseHeader(buf[:])
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	mk := func(mut func(b []byte)) []byte {
		var b [HeaderSize]byte
		PutHeader(b[:], Header{Op: OpPing})
		mut(b[:])
		return b[:]
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"short", make([]byte, HeaderSize-1)},
		{"zero op", mk(func(b []byte) { b[0] = 0 })},
		{"bad version", mk(func(b []byte) { b[2] = 9 })},
		{"reserved set", mk(func(b []byte) { b[3] = 1 })},
		{"oversized payload", mk(func(b []byte) { b[20], b[21], b[22], b[23] = 0xFF, 0xFF, 0xFF, 0xFF })},
	}
	for _, tc := range cases {
		if _, err := ParseHeader(tc.buf); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestParseHeaderSkewTolerance pins the version-skew contract: ops and
// flags this implementation does not know still parse (the frame is
// structurally sound, so the receiver can consume it and answer with
// an error frame), and Known reports them as undispatchable.
func TestParseHeaderSkewTolerance(t *testing.T) {
	mk := func(mut func(b []byte)) []byte {
		var b [HeaderSize]byte
		PutHeader(b[:], Header{Op: OpPing})
		mut(b[:])
		return b[:]
	}

	h, err := ParseHeader(mk(func(b []byte) { b[0] = byte(opMax) + 37 }))
	if err != nil {
		t.Fatalf("future op rejected at parse: %v", err)
	}
	if h.Op.Known() {
		t.Errorf("op %d reported as known", h.Op)
	}
	if got := h.Op.String(); got != "op(43)" {
		t.Errorf("future op renders as %q", got)
	}

	h, err = ParseHeader(mk(func(b []byte) { b[1] = 0xF0 }))
	if err != nil {
		t.Fatalf("future flags rejected at parse: %v", err)
	}
	if h.Flags.Known() {
		t.Errorf("flags %#x reported as known", h.Flags)
	}
	if !(FlagWantData | FlagPeer).Known() {
		t.Error("defined flags reported as unknown")
	}
	if !OpOwner.Known() {
		t.Error("OpOwner reported as unknown")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 1000)
	var net bytes.Buffer
	h := Header{Op: OpWrite, Seq: 7, File: 1, Offset: 2, Size: 3}
	if err := WriteFrame(&net, h, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, gotPayload, err := DecodeFrame(&net, nil)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Op != OpWrite || got.Seq != 7 || int(got.PayloadLen) != len(payload) {
		t.Errorf("header: %+v", got)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Error("payload mangled")
	}
}

func TestDecodeFrameTruncatedPayload(t *testing.T) {
	var net bytes.Buffer
	if err := WriteFrame(&net, Header{Op: OpWrite, Seq: 1}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	short := net.Bytes()[:net.Len()-40]
	if _, _, err := DecodeFrame(bytes.NewReader(short), nil); err == nil {
		t.Error("truncated payload decoded without error")
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	if err := WriteFrame(io.Discard, Header{Op: OpWrite}, make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversized payload written")
	}
}

func TestReadLine(t *testing.T) {
	br := bufio.NewReaderSize(strings.NewReader("{\"op\":\"ping\"}\r\nnext\n"), 16)
	line, err := ReadLine(br, 1<<20)
	if err != nil {
		t.Fatalf("ReadLine: %v", err)
	}
	if string(line) != `{"op":"ping"}` {
		t.Errorf("line = %q", line)
	}
	line, err = ReadLine(br, 1<<20)
	if err != nil || string(line) != "next" {
		t.Errorf("second line = %q, %v", line, err)
	}
	if _, err := ReadLine(br, 1<<20); err != io.EOF {
		t.Errorf("EOF read: %v", err)
	}
}

// TestReadLineLongerThanBufio covers the regression the old
// bufio.Scanner default caused: a line far larger than the reader's
// internal buffer must come through whole, and one over the cap must
// be refused rather than silently truncated.
func TestReadLineBounds(t *testing.T) {
	big := strings.Repeat("x", 300<<10)
	br := bufio.NewReaderSize(strings.NewReader(big+"\n"), 4096)
	line, err := ReadLine(br, MaxFrame)
	if err != nil {
		t.Fatalf("300 KiB line: %v", err)
	}
	if len(line) != len(big) {
		t.Errorf("got %d bytes, want %d", len(line), len(big))
	}

	br = bufio.NewReaderSize(strings.NewReader(big+"\n"), 4096)
	if _, err := ReadLine(br, 1024); err != ErrFrameTooLarge {
		t.Errorf("over-cap line: err = %v, want ErrFrameTooLarge", err)
	}
}

// FuzzWireDecode feeds arbitrary bytes to the frame decoder: it must
// error or succeed, never panic, and never allocate past the declared
// payload length (enforced structurally: ReadPayload only allocates
// after PayloadLen has been validated against MaxPayload).
func FuzzWireDecode(f *testing.F) {
	var seed [HeaderSize]byte
	PutHeader(seed[:], Header{Op: OpRead, Flags: FlagWantData, Seq: 1, File: 2, Offset: 3, Size: 4})
	f.Add(seed[:])
	var framed bytes.Buffer
	WriteFrame(&framed, Header{Op: OpWrite, Seq: 9}, []byte("payload")) //nolint:errcheck
	f.Add(framed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	trunc := append([]byte(nil), seed[:]...)
	trunc[20] = 0x80 // claims a payload that is not there
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := DecodeFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// Success implies internal consistency. Unknown ops and flags
		// are allowed through (skew tolerance); a zero op is not.
		if h.Op == 0 {
			t.Fatalf("decoder accepted op %d", h.Op)
		}
		if uint32(len(payload)) != h.PayloadLen {
			t.Fatalf("payload length %d, header says %d", len(payload), h.PayloadLen)
		}
		if h.PayloadLen > MaxPayload {
			t.Fatalf("decoder accepted payload length %d over MaxPayload", h.PayloadLen)
		}
		// Re-encode and re-decode: must be stable.
		var out bytes.Buffer
		if err := WriteFrame(&out, h, payload); err != nil {
			t.Fatalf("re-encode of accepted frame: %v", err)
		}
		h2, p2, err := DecodeFrame(bytes.NewReader(out.Bytes()), nil)
		if err != nil {
			t.Fatalf("re-decode of accepted frame: %v", err)
		}
		if h2 != h || !bytes.Equal(p2, payload) {
			t.Fatal("frame round trip unstable")
		}
	})
}
