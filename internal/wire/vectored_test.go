package wire

import (
	"bufio"
	"bytes"
	"net"
	"testing"
)

// TestHotpathWriteFrameVectored round-trips a vectored frame through
// an ordinary io.Writer (the net.Buffers sequential fallback — the
// same path a fault-injected or otherwise wrapped conn takes) and
// checks the reader sees one correctly framed message.
func TestHotpathWriteFrameVectored(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 512)
	var buf bytes.Buffer
	var scratch [HeaderSize]byte
	var vec net.Buffers
	h := Header{Op: OpRead, Flags: FlagOK | FlagHit, Seq: 42, File: 7, Offset: 3, Size: 1}
	if err := WriteFrameVectored(&buf, scratch[:], h, payload, &vec); err != nil {
		t.Fatalf("WriteFrameVectored: %v", err)
	}
	br := bufio.NewReader(&buf)
	got, err := ReadHeader(br, scratch[:])
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if got.Seq != 42 || got.Op != OpRead || got.PayloadLen != 512 {
		t.Fatalf("header round-trip = %+v", got)
	}
	data, err := ReadPayload(br, got, nil)
	if err != nil {
		t.Fatalf("ReadPayload: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("payload corrupted through the vectored path")
	}
	// net.Buffers.WriteTo consumes the slice it flushes; the vec must
	// come back empty with its backing array intact for reuse.
	if len(vec) != 0 {
		t.Fatalf("vec not reset after flush: len=%d", len(vec))
	}
	if cap(vec) < 2 {
		t.Fatalf("vec lost its backing array: cap=%d", cap(vec))
	}
}

// TestHotpathWriteFrameVectoredReuse pins the zero-allocation
// contract: once the gather vector has warmed up, repeated vectored
// writes must not allocate.
func TestHotpathWriteFrameVectoredReuse(t *testing.T) {
	payload := make([]byte, 256)
	var scratch [HeaderSize]byte
	var vec net.Buffers
	h := Header{Op: OpRead, Flags: FlagOK, Seq: 1}
	sink := bufio.NewWriterSize(discard{}, 1<<16)
	// Warm the vector once so the backing array exists.
	if err := WriteFrameVectored(sink, scratch[:], h, payload, &vec); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := WriteFrameVectored(sink, scratch[:], h, payload, &vec); err != nil {
			t.Fatalf("WriteFrameVectored: %v", err)
		}
		sink.Reset(discard{})
	})
	if allocs != 0 {
		t.Fatalf("WriteFrameVectored allocates %.1f/op, want 0", allocs)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestHotpathFrameBatch queues several frames — mixed whole frames
// and header+scattered-payload triples, the server's gather shape —
// flushes them as one vectored write, and checks each parses back in
// order.
func TestHotpathFrameBatch(t *testing.T) {
	var b FrameBatch
	var buf bytes.Buffer

	p1 := bytes.Repeat([]byte{1}, 64)
	if err := b.AppendFrame(Header{Op: OpPing, Flags: FlagOK, Seq: 1}, p1); err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	// A read response whose payload arrives as two cache-buffer
	// fragments: header first with the summed length, then the parts.
	p2a, p2b := bytes.Repeat([]byte{2}, 32), bytes.Repeat([]byte{3}, 32)
	b.AppendHeader(Header{Op: OpRead, Flags: FlagOK | FlagHit, Seq: 2, PayloadLen: 64})
	b.AppendPayload(p2a)
	b.AppendPayload(p2b)
	if err := b.AppendFrame(Header{Op: OpClose, Flags: FlagOK, Seq: 3}, nil); err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	if b.Len() != 3 {
		t.Fatalf("batch Len = %d, want 3", b.Len())
	}
	if err := b.Flush(&buf); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not empty after Flush: %d", b.Len())
	}

	br := bufio.NewReader(&buf)
	var scratch [HeaderSize]byte
	wantPayloads := [][]byte{p1, append(append([]byte{}, p2a...), p2b...), nil}
	for i, seq := range []uint32{1, 2, 3} {
		h, err := ReadHeader(br, scratch[:])
		if err != nil {
			t.Fatalf("frame %d: ReadHeader: %v", i, err)
		}
		if h.Seq != seq {
			t.Fatalf("frame %d: seq = %d, want %d", i, h.Seq, seq)
		}
		data, err := ReadPayload(br, h, nil)
		if err != nil {
			t.Fatalf("frame %d: ReadPayload: %v", i, err)
		}
		if !bytes.Equal(data, wantPayloads[i]) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if br.Buffered() != 0 {
		t.Fatalf("%d stray bytes after the batch", br.Buffered())
	}
}

// TestHotpathFrameBatchReuse: a warmed batch queues and flushes
// without allocating — the server keeps one per connection for the
// life of the connection.
func TestHotpathFrameBatchReuse(t *testing.T) {
	var b FrameBatch
	payload := make([]byte, 128)
	sink := bufio.NewWriterSize(discard{}, 1<<16)
	for i := 0; i < 4; i++ { // warm hdrs and vec to steady-state size
		b.AppendHeader(Header{Op: OpRead, Flags: FlagOK, Seq: uint32(i), PayloadLen: 128})
		b.AppendPayload(payload)
	}
	if err := b.Flush(sink); err != nil {
		t.Fatalf("warmup flush: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4; i++ {
			b.AppendHeader(Header{Op: OpRead, Flags: FlagOK, Seq: uint32(i), PayloadLen: 128})
			b.AppendPayload(payload)
		}
		if err := b.Flush(sink); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		sink.Reset(discard{})
	})
	if allocs != 0 {
		t.Fatalf("FrameBatch cycle allocates %.1f/op, want 0", allocs)
	}
}
