// Package xfs simulates the Berkeley serverless file system (Anderson
// et al.) at the level of detail the paper exercises: every node
// caches locally and makes its own decisions, managers locate blocks
// machine-wide, and replacement follows the N-chance forwarding of
// Dahlin et al. Prefetching is therefore *per node*: each node keeps
// its own predictor per file and limits only its own outstanding
// prefetches, so several nodes may prefetch the same file in parallel
// — the paper's "not really linear" implementation whose extra
// prefetch volume floods small caches (§4, §5.2).
package xfs

import (
	"repro/internal/blockdev"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/fscommon"
	"repro/internal/machine"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config assembles an xFS instance.
type Config struct {
	Machine            machine.Config
	CacheBlocksPerNode int
	Algorithm          core.AlgSpec
	// Recirculations is the N of N-chance forwarding: 0 means the
	// default of 2, negative disables forwarding entirely (plain
	// local LRU, the no-cooperation baseline).
	Recirculations int
}

// driverKey identifies a per-node, per-file prefetch driver.
type driverKey struct {
	node blockdev.NodeID
	file blockdev.FileID
}

// FS is one simulated xFS instance.
type FS struct {
	fscommon.Base
	alg     core.AlgSpec
	drivers map[driverKey]*core.Driver
}

// New builds an xFS over the given machine for the given trace.
func New(e *sim.Engine, cfg Config, tr *workload.Trace) *FS {
	recirc := cfg.Recirculations
	if recirc == 0 {
		recirc = 2
	} else if recirc < 0 {
		recirc = 0
	}
	return &FS{
		Base: *fscommon.NewBase(e, cfg.Machine, cfg.CacheBlocksPerNode,
			cachesim.NChance{Recirculations: recirc}, tr, cfg.Algorithm),
		alg:     cfg.Algorithm,
		drivers: make(map[driverKey]*core.Driver),
	}
}

// Name identifies the file system.
func (fs *FS) Name() string { return "xFS" }

// Start launches the write-back daemon.
func (fs *FS) Start() { fs.StartWriteback() }

// ManagerFor returns the node managing file f's location metadata.
func (fs *FS) ManagerFor(f blockdev.FileID) blockdev.NodeID {
	return blockdev.NodeID(uint32(f) * 2654435761 % uint32(fs.Cfg.Nodes))
}

// xfsEnv adapts the FS for one node's per-file driver. The locality
// difference from PAFS is deliberate: a node considers only its *own*
// pool, so a block prefetched by a neighbour is prefetched again here
// (a copy, fetched over the network when possible, from disk when
// not).
type xfsEnv struct {
	fs   *FS
	node blockdev.NodeID
}

func (e xfsEnv) Cached(b blockdev.BlockID) bool {
	return e.fs.Cch.ContainsOn(e.node, b)
}

func (e xfsEnv) Prefetch(b blockdev.BlockID, fallback bool, cancelled func() bool, done func()) bool {
	fs := e.fs
	if fs.Stopped() {
		// Draining after the trace: never calling done stalls the
		// chain, which is exactly what lets the run end.
		return true
	}
	fs.Coll.PrefetchIssued(fallback)
	// Prefetches go straight to disk: the prefetch decision is local
	// and bypasses the manager, so a block sitting in a peer's cache
	// is fetched again anyway — the duplicated work (and the extra
	// disk traffic of Figure 9) that makes xFS's per-node prefetching
	// "not really linear" (§4, §5.2).
	fs.PrefetchBegin(b)
	fs.Disks.Read(b, fscommon.PrefetchPriority(fs.alg), fs.WrapPrefetchCancel(b, cancelled), func(eng *sim.Engine, at sim.Time) {
		fs.PrefetchEnd(b)
		fs.Coll.DiskRead(true)
		_, victims := fs.Cch.Insert(e.node, b, cachesim.InsertOptions{Prefetched: true})
		fs.FlushVictims(victims)
		done()
	})
	return true
}

// driverFor lazily creates the per-(node,file) driver; nil when NP.
func (fs *FS) driverFor(node blockdev.NodeID, f blockdev.FileID) *core.Driver {
	if !fs.alg.Prefetches() {
		return nil
	}
	k := driverKey{node, f}
	if d, ok := fs.drivers[k]; ok {
		return d
	}
	// Every node's driver for f shares the file's one degree policy:
	// the bound applies per driver, so the machine-wide aggregate can
	// still exceed it — the same per-node-vs-global gap that keeps
	// xFS's prefetching "not really linear" in the paper (§4).
	d := core.NewDriver(core.DriverConfig{
		Predictor:  fs.alg.NewPredictor(),
		Mode:       fs.alg.Mode,
		Degree:     fs.Degrees.For(f),
		File:       f,
		FileBlocks: fs.FileBlocks(f),
		Env:        xfsEnv{fs: fs, node: node},
		Observer:   fs.Ledger,
	})
	fs.drivers[k] = d
	return d
}

// DriverCount returns how many (node, file) drivers exist (test and
// diagnostic hook: shared files should spawn several).
func (fs *FS) DriverCount() int { return len(fs.drivers) }

// Read serves a user read with xFS's local-first path: local pool,
// then the manager redirects to a remote holder or to disk. The data
// lands in the client's local pool (possibly evicting via N-chance).
func (fs *FS) Read(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	blocks := span.Blocks()
	localHits := 0
	for _, b := range blocks {
		if fs.Cch.ContainsOn(client, b) {
			localHits++
		}
	}
	satisfied := localHits == len(blocks)
	fs.Coll.ReadBlocks(len(blocks), localHits)

	remaining := len(blocks)
	var last sim.Time
	finishOne := func(_ *sim.Engine, at sim.Time) {
		if at > last {
			last = at
		}
		remaining--
		if remaining == 0 {
			done(last)
		}
	}
	for _, b := range blocks {
		blk := b
		if fs.Cch.ContainsOn(client, blk) {
			fs.Cch.Touch(client, blk)
			// Local copy: a memory copy into the application buffer.
			fs.Engine.After(fs.Net.LocalCost(fs.Cfg.BlockSize), func(e *sim.Engine) {
				finishOne(e, e.Now())
			})
			continue
		}
		manager := fs.ManagerFor(blk.File)
		fs.Net.Send(client, manager, netmodel.ControlMessageSize, func(e *sim.Engine, _ sim.Time) {
			fs.resolveMiss(client, blk, finishOne)
		})
	}
	if d := fs.driverFor(client, span.File); d != nil {
		d.OnUserRequest(core.Request{Offset: span.Start, Size: span.Count}, core.Tick(fs.Engine.Now()), satisfied)
	}
}

// resolveMiss runs at the manager: redirect to a caching node, or go
// to disk. Either way the block becomes a local copy at the client.
func (fs *FS) resolveMiss(client blockdev.NodeID, blk blockdev.BlockID, finishOne func(e *sim.Engine, at sim.Time)) {
	if hs := fs.Cch.Holders(blk); len(hs) > 0 {
		src := hs[0]
		fs.Cch.Touch(src, blk)
		fs.Net.Send(src, client, fs.Cfg.BlockSize, func(e *sim.Engine, at sim.Time) {
			_, victims := fs.Cch.Insert(client, blk, cachesim.InsertOptions{})
			fs.FlushVictims(victims)
			finishOne(e, at)
		})
		return
	}
	fs.DemandFetch(blk, client, func(e *sim.Engine, _ sim.Time) {
		// Data travels from the disk's host node to the client.
		fs.Net.Send(fs.HostOf(blk), client, fs.Cfg.BlockSize, finishOne)
	})
}

// Close stops this node's prefetch chain for the file — a purely
// local decision, like everything else in xFS. Other nodes' chains on
// the same file keep running.
func (fs *FS) Close(client blockdev.NodeID, file blockdev.FileID, done func(at sim.Time)) {
	fs.Engine.After(fs.Net.LocalCost(netmodel.ControlMessageSize), func(e *sim.Engine) {
		if d, ok := fs.drivers[driverKey{client, file}]; ok {
			d.StopChain()
		}
		done(e.Now())
	})
}

// Write absorbs a user write into the client's local pool, creating or
// dirtying local copies; stale remote copies are invalidated, which is
// xFS's write-ownership behaviour reduced to what the simulation
// needs.
func (fs *FS) Write(client blockdev.NodeID, span blockdev.Span, done func(at sim.Time)) {
	blocks := span.Blocks()
	localHits := 0
	for _, b := range blocks {
		if fs.Cch.ContainsOn(client, b) {
			localHits++
		}
	}
	satisfied := localHits == len(blocks)

	remaining := len(blocks)
	var last sim.Time
	finishOne := func(_ *sim.Engine, at sim.Time) {
		if at > last {
			last = at
		}
		remaining--
		if remaining == 0 {
			done(last)
		}
	}
	for _, b := range blocks {
		blk := b
		if !fs.Cch.ContainsOn(client, blk) && fs.Cch.Contains(blk) {
			// Invalidate remote copies; ownership moves here.
			fs.Cch.Drop(blk)
		}
		_, victims := fs.Cch.Insert(client, blk, cachesim.InsertOptions{Dirty: true})
		fs.FlushVictims(victims)
		fs.Engine.After(fs.Net.LocalCost(fs.Cfg.BlockSize), func(e *sim.Engine) {
			finishOne(e, e.Now())
		})
	}
	if d := fs.driverFor(client, span.File); d != nil {
		d.OnUserRequest(core.Request{Offset: span.Start, Size: span.Count}, core.Tick(fs.Engine.Now()), satisfied)
	}
}
