package xfs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestPartialLocalHitFetchesOnlyMisses(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Read(0, span(0, 0, 2), func(sim.Time) {})
	e.Run()
	before := fs.Collector().DiskDemandReads()
	fs.Read(0, span(0, 0, 4), func(sim.Time) {})
	e.Run()
	if got := fs.Collector().DiskDemandReads() - before; got != 2 {
		t.Errorf("partial local hit fetched %d blocks, want 2", got)
	}
}

func TestManagerRedirectCountsNetworkMessages(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	before := fs.Net.MessagesRemote() + fs.Net.MessagesLocal()
	// Remote hit path: client 3 -> manager -> holder 0 -> client 3.
	fs.Read(3, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	delta := fs.Net.MessagesRemote() + fs.Net.MessagesLocal() - before
	if delta < 2 {
		t.Errorf("remote hit produced %d messages, want at least control + data", delta)
	}
}

func TestLocalWriteFollowedByLocalRead(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Write(2, span(0, 5, 2), func(sim.Time) {})
	e.Run()
	reads := fs.Collector().DiskReads()
	start := e.Now()
	var end sim.Time
	fs.Read(2, span(0, 5, 2), func(at sim.Time) { end = at })
	e.Run()
	if fs.Collector().DiskReads() != reads {
		t.Error("read of locally written blocks went to disk")
	}
	if end.Sub(start) > sim.Milliseconds(2) {
		t.Errorf("local read took %v, want sub-millisecond", end.Sub(start))
	}
}

func TestNoForwardingConfigDropsSinglets(t *testing.T) {
	e := sim.NewEngine(1)
	fs := New(e, Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 1,
		Algorithm:          core.SpecNP,
		Recirculations:     -1, // plain local LRU
	}, oneFileTrace(100))
	fs.Collector().StartMeasurement()
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	fs.Read(0, span(0, 1, 1), func(sim.Time) {})
	e.Run()
	if fs.Cache().Stats().Forwards != 0 {
		t.Error("forwarding happened despite Recirculations=-1")
	}
}

func TestSatisfiedIsLocalNotGlobal(t *testing.T) {
	// A block cached on another node is NOT "already prefetched" from
	// this node's point of view: the per-node driver restarts its
	// chain, which is exactly the xFS duplicated-work behaviour.
	e, fs := newFS(core.SpecLnAgrOBA, 64, 50)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	// Node 1 reads block 0 (remote hit): unsatisfied locally, so its
	// own driver starts a chain of its own.
	fs.Read(1, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if fs.DriverCount() != 2 {
		t.Fatalf("driver count = %d, want 2", fs.DriverCount())
	}
	// Node 1's local pool must have gained its own copies.
	count := 0
	for b := 0; b < 50; b++ {
		if fs.Cache().ContainsOn(1, span(0, b, 1).Blocks()[0]) {
			count++
		}
	}
	if count < 10 {
		t.Errorf("node 1 holds only %d local copies; its chain did not run", count)
	}
}
