package xfs

import (
	"testing"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func smallMachine() machine.Config {
	cfg := machine.NOW()
	cfg.Nodes = 4
	cfg.Disks = 2
	return cfg
}

func oneFileTrace(n int) *workload.Trace {
	return &workload.Trace{
		Name:       "test",
		FileBlocks: map[blockdev.FileID]blockdev.BlockNo{0: blockdev.BlockNo(n)},
		Procs:      []workload.Process{{Node: 0}},
	}
}

func newFS(alg core.AlgSpec, cacheBlocks, fileBlocks int) (*sim.Engine, *FS) {
	e := sim.NewEngine(1)
	fs := New(e, Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: cacheBlocks,
		Algorithm:          alg,
	}, oneFileTrace(fileBlocks))
	fs.Collector().StartMeasurement()
	return e, fs
}

func span(f, start, count int) blockdev.Span {
	return blockdev.Span{File: blockdev.FileID(f), Start: blockdev.BlockNo(start), Count: int32(count)}
}

func TestMissFetchesToLocalPool(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Read(2, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if !fs.Cache().ContainsOn(2, blockdev.BlockID{File: 0, Block: 0}) {
		t.Error("miss did not create a local copy on the client")
	}
	if fs.Collector().DiskDemandReads() != 1 {
		t.Errorf("demand reads = %d, want 1", fs.Collector().DiskDemandReads())
	}
}

func TestRemoteHitCopiesWithoutDisk(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Read(2, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	reads := fs.Collector().DiskDemandReads()
	fs.Read(3, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if fs.Collector().DiskDemandReads() != reads {
		t.Error("remote hit went to disk")
	}
	blk := blockdev.BlockID{File: 0, Block: 0}
	if !fs.Cache().ContainsOn(3, blk) {
		t.Error("remote hit did not create a local duplicate")
	}
	if !fs.Cache().ContainsOn(2, blk) {
		t.Error("remote hit destroyed the source copy")
	}
}

func TestLatencyOrderingLocalRemoteDisk(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	measure := func(client int, s blockdev.Span) sim.Duration {
		start := e.Now()
		var end sim.Time
		fs.Read(blockdev.NodeID(client), s, func(at sim.Time) { end = at })
		e.Run()
		return end.Sub(start)
	}
	disk := measure(2, span(0, 0, 1))   // miss: disk
	remote := measure(3, span(0, 0, 1)) // remote hit: network copy
	local := measure(3, span(0, 0, 1))  // local hit
	if !(local < remote && remote < disk) {
		t.Errorf("latency ordering wrong: local=%v remote=%v disk=%v", local, remote, disk)
	}
}

func TestPerNodeDriversDuplicatePrefetch(t *testing.T) {
	// Two nodes reading the same file each get their own driver: the
	// paper's per-node linearity. Aggregate prefetch volume grows.
	e, fs := newFS(core.SpecLnAgrOBA, 64, 30)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	fs.Read(1, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	if fs.DriverCount() != 2 {
		t.Errorf("driver count = %d, want 2 (per node)", fs.DriverCount())
	}
	// Both nodes should end up with their own copies of the walked
	// blocks (via disk or peer copy).
	blk := blockdev.BlockID{File: 0, Block: 10}
	on0, on1 := fs.Cache().ContainsOn(0, blk), fs.Cache().ContainsOn(1, blk)
	if !on0 || !on1 {
		t.Errorf("block 10 local copies: node0=%v node1=%v, want both", on0, on1)
	}
}

func TestPrefetchDuplicatesDiskWork(t *testing.T) {
	// xFS prefetch decisions are local and go straight to disk, so a
	// second node walking a file already cached by the first re-reads
	// it from disk — the paper's doubled prefetch volume (§5.2).
	e, fs := newFS(core.SpecLnAgrOBA, 64, 20)
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	diskReads := fs.Collector().DiskReads()
	fs.Read(1, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	extra := fs.Collector().DiskReads() - diskReads
	if extra == 0 {
		t.Error("no duplicated prefetch disk reads; xFS linearity should be per node only")
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	fs.Read(2, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	fs.Write(3, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	blk := blockdev.BlockID{File: 0, Block: 0}
	if fs.Cache().ContainsOn(2, blk) {
		t.Error("stale copy survived a write by another node")
	}
	if !fs.Cache().ContainsOn(3, blk) {
		t.Error("writer has no local copy")
	}
	if len(fs.Cache().DirtyBlocks()) != 1 {
		t.Error("written block not dirty")
	}
}

func TestWriteLatencyIsLocal(t *testing.T) {
	e, fs := newFS(core.SpecNP, 32, 100)
	start := e.Now()
	var end sim.Time
	fs.Write(1, span(0, 5, 1), func(at sim.Time) { end = at })
	e.Run()
	if lat := end.Sub(start); lat > sim.Milliseconds(1) {
		t.Errorf("write latency %v; xFS writes absorb locally", lat)
	}
}

func TestManagerForStable(t *testing.T) {
	_, fs := newFS(core.SpecNP, 16, 10)
	if fs.ManagerFor(5) != fs.ManagerFor(5) {
		t.Error("manager assignment unstable")
	}
	if fs.Name() != "xFS" {
		t.Error("name wrong")
	}
}

func TestDefaultRecirculations(t *testing.T) {
	e := sim.NewEngine(1)
	fs := New(e, Config{
		Machine:            smallMachine(),
		CacheBlocksPerNode: 1,
		Algorithm:          core.SpecNP,
	}, oneFileTrace(100))
	fs.Collector().StartMeasurement()
	// Fill node 0's single buffer, then insert another block; the
	// singlet must be forwarded (N-chance active by default).
	fs.Read(0, span(0, 0, 1), func(sim.Time) {})
	e.Run()
	fs.Read(0, span(0, 1, 1), func(sim.Time) {})
	e.Run()
	if fs.Cache().Stats().Forwards == 0 {
		t.Error("no N-chance forwarding with default config")
	}
}

func TestColdWholeFileScanBenefitsFromPrefetch(t *testing.T) {
	run := func(alg core.AlgSpec) sim.Duration {
		e, fs := newFS(alg, 128, 200)
		var total sim.Duration
		var reads int
		var next func(b int)
		next = func(b int) {
			if b >= 150 {
				return
			}
			issue := e.Now()
			fs.Read(0, span(0, b, 1), func(at sim.Time) {
				total += at.Sub(issue)
				reads++
				e.After(sim.Milliseconds(2), func(*sim.Engine) { next(b + 1) })
			})
		}
		next(0)
		e.Run()
		return total / sim.Duration(reads)
	}
	np := run(core.SpecNP)
	agr := run(core.SpecLnAgrOBA)
	if agr >= np {
		t.Errorf("Ln_Agr_OBA %v not better than NP %v on xFS sequential scan", agr, np)
	}
}
