// Benchmarks regenerating the paper's evaluation. One benchmark per
// table and figure re-runs the underlying simulation sweep and reports
// the series the paper plots via b.ReportMetric; the Ablation
// benchmarks exercise the design choices DESIGN.md calls out.
//
// The benches run at the small scale so `go test -bench=. -benchmem`
// completes in minutes; EXPERIMENTS.md records a full-scale run made
// with cmd/lapbench.
package repro_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/blockbuf"
	"repro/internal/blockdev"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/lapcache"
	"repro/internal/lapclient"
)

// benchScale is shared by every benchmark in this file.
func benchScale() experiment.Scale { return experiment.SmallScale() }

// runFigure regenerates one paper artifact per iteration and reports
// each (algorithm, cache size) point as a benchmark metric.
func runFigure(b *testing.B, id string) {
	b.Helper()
	s := benchScale()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		suite := experiment.NewSuite(s, 0)
		var err error
		fig, err = suite.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	unit := "ms"
	if fig.Unit != "ms" {
		unit = fig.Unit
	}
	for _, series := range fig.Series {
		for i, mb := range fig.Sizes {
			b.ReportMetric(series.Values[i], fmt.Sprintf("%s@%dMB_%s", series.Alg, mb, unit))
		}
	}
}

// BenchmarkTable1 formats the simulation-parameter table (trivially
// cheap; present so every paper artifact has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: average read time, CHARISMA on
// PAFS.
func BenchmarkFig4(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: average read time, CHARISMA on
// xFS.
func BenchmarkFig5(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: average read time, Sprite on
// PAFS.
func BenchmarkFig6(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: average read time, Sprite on
// xFS.
func BenchmarkFig7(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: disk accesses, CHARISMA on PAFS.
func BenchmarkFig8(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: disk accesses, CHARISMA on xFS.
func BenchmarkFig9(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: disk accesses, Sprite on PAFS.
func BenchmarkFig10(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: disk accesses, Sprite on xFS.
func BenchmarkFig11(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkTable2 regenerates Table 2: per-block disk write counts,
// CHARISMA on PAFS.
func BenchmarkTable2(b *testing.B) { runFigure(b, "table2") }

// runAblationCell measures one algorithm variant on CHARISMA/PAFS at
// 4 MB per node and reports its average read time and misprediction.
// Ablations run at the tiny scale: the unthrottled variant's cache
// churn — the very behaviour the paper's linear limit exists to
// prevent — makes it orders of magnitude more work at larger scales.
func runAblationCell(b *testing.B, alg core.AlgSpec) {
	b.Helper()
	s := experiment.TinyScale()
	var r experiment.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunCell(s, experiment.Cell{
			FS: experiment.PAFS, Workload: experiment.Charisma, Alg: alg, CacheMB: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgReadMs, "read_ms")
	b.ReportMetric(100*r.MispredictionRatio, "mispredict_%")
	b.ReportMetric(float64(r.DiskAccesses), "disk_accesses")
}

// BenchmarkAblationLinearity compares the paper's one-outstanding
// throttle against a K=4 window and fully unthrottled aggression.
func BenchmarkAblationLinearity(b *testing.B) {
	for _, c := range []struct {
		name string
		out  int
	}{{"linear1", 1}, {"window4", 4}, {"unlimited", 0}} {
		b.Run(c.name, func(b *testing.B) {
			runAblationCell(b, core.AlgSpec{
				Kind: core.AlgISPPM, Order: 1,
				Mode: core.ModeAggressive, MaxOutstanding: c.out,
			})
		})
	}
}

// BenchmarkAblationLinkPolicy compares the paper's most-recent link
// rule against the original PPM most-probable rule.
func BenchmarkAblationLinkPolicy(b *testing.B) {
	for _, c := range []struct {
		name string
		prob bool
	}{{"mostRecent", false}, {"mostProbable", true}} {
		b.Run(c.name, func(b *testing.B) {
			spec := core.SpecLnAgrISPPM1
			spec.MostProbableLinks = c.prob
			runAblationCell(b, spec)
		})
	}
}

// BenchmarkAblationOrder sweeps the Markov order of the aggressive
// IS_PPM predictor.
func BenchmarkAblationOrder(b *testing.B) {
	for order := 1; order <= 4; order++ {
		b.Run(fmt.Sprintf("order%d", order), func(b *testing.B) {
			runAblationCell(b, core.AlgSpec{
				Kind: core.AlgISPPM, Order: order,
				Mode: core.ModeAggressive, MaxOutstanding: 1,
			})
		})
	}
}

// BenchmarkAblationPriority compares prefetching at the paper's
// strictly-lower disk priority against user priority.
func BenchmarkAblationPriority(b *testing.B) {
	for _, c := range []struct {
		name  string
		uprio bool
	}{{"lowPriority", false}, {"userPriority", true}} {
		b.Run(c.name, func(b *testing.B) {
			spec := core.SpecLnAgrISPPM1
			spec.UserPriorityPrefetch = c.uprio
			runAblationCell(b, spec)
		})
	}
}

// BenchmarkAblationFallback compares IS_PPM with and without the
// cold-start OBA fallback.
func BenchmarkAblationFallback(b *testing.B) {
	for _, c := range []struct {
		name string
		nofb bool
	}{{"withFallback", false}, {"noFallback", true}} {
		b.Run(c.name, func(b *testing.B) {
			spec := core.SpecLnAgrISPPM1
			spec.NoFallback = c.nofb
			runAblationCell(b, spec)
		})
	}
}

// newBenchEngine builds a lapcache engine for the runtime benchmarks:
// zero-latency in-memory store, no prefetching, so the measured cost is
// the cache path itself.
func newBenchEngine(b *testing.B, cacheBlocks int) *lapcache.Engine {
	b.Helper()
	const blockSize = 8192
	e, err := lapcache.New(lapcache.Config{
		Alg:         core.SpecNP,
		BlockSize:   blockSize,
		CacheBlocks: cacheBlocks,
		Store:       lapcache.NewMemStore(blockSize, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(e.Shutdown)
	return e
}

// BenchmarkLapcacheGet measures the runtime engine's three demand-read
// paths: a plain cache hit, a miss through the backing store, and the
// first touch of a prefetched block (hit + timely classification).
// The hit paths go through ReadInto — the zero-copy API the server
// uses — and with the refcounted buffer pool they run at 0 allocs/op.
// BENCH_lapcache.json records a reference run.
func BenchmarkLapcacheGet(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		e := newBenchEngine(b, 64)
		e.Preload(1, 0, 1, false)
		var (
			bufs []*blockbuf.Buf
			hit  bool
			err  error
		)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bufs, hit, err = e.ReadInto(bufs[:0], 1, 0, 1)
			if err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
			bufs[0].Release()
		}
	})
	b.Run("hitCopy", func(b *testing.B) {
		// The legacy copying wrapper, for comparison: one 8 KiB
		// allocation per read.
		e := newBenchEngine(b, 64)
		e.Preload(1, 0, 1, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := e.Read(1, 0, 1); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		// A 1-block cache and a striding scan: every read misses and
		// goes to the (zero-latency) store.
		e := newBenchEngine(b, 1)
		var (
			bufs []*blockbuf.Buf
			hit  bool
			err  error
		)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := blockdev.BlockNo(i % (1 << 18))
			bufs, hit, err = e.ReadInto(bufs[:0], 1, off, 1)
			if err != nil || hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
			bufs[0].Release()
		}
	})
	b.Run("prefetchedHit", func(b *testing.B) {
		// Blocks are staged with the speculative flag armed, in batches
		// outside the timer; each read is then a first touch of a
		// prefetched block — the timely path.
		const batch = 4096
		e := newBenchEngine(b, 2*batch) // headroom: shard hashing is not perfectly even
		var (
			bufs []*blockbuf.Buf
			hit  bool
			err  error
		)
		i := 0
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if i == 0 {
				b.StopTimer()
				e.Preload(1, 0, batch, true)
				b.StartTimer()
			}
			bufs, hit, err = e.ReadInto(bufs[:0], 1, blockdev.BlockNo(i), 1)
			if err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
			bufs[0].Release()
			i = (i + 1) % batch
		}
	})
}

// startBenchServer exposes a hot single-block engine over loopback TCP
// for the wire benchmarks.
func startBenchServer(b *testing.B) string {
	b.Helper()
	e := newBenchEngine(b, 64)
	e.Preload(1, 0, 1, false) // every read below is a cache hit
	srv := lapcache.NewServer(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(srv.Close)
	return ln.Addr().String()
}

// BenchmarkWireRoundTrip compares the two wire protocols end to end
// over loopback TCP: an 8 KiB cached block fetched with data per
// round trip. json is the legacy line protocol (base64 payload);
// binary is the framed protocol streaming the block out of the
// refcounted cache buffer; binaryPipelined keeps a window of requests
// in flight on pooled connections — the configuration -replay uses.
// BENCH_wire.json records a reference run (make bench).
func BenchmarkWireRoundTrip(b *testing.B) {
	const blockSize = 8192
	b.Run("json", func(b *testing.B) {
		addr := startBenchServer(b)
		c, err := lapclient.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.SetBytes(blockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, hit, err := c.Read(1, 0, 1, true)
			if err != nil || !hit || len(data) != blockSize {
				b.Fatalf("hit=%v len=%d err=%v", hit, len(data), err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		addr := startBenchServer(b)
		c, err := lapclient.DialConn(addr, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.SetBytes(blockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, hit, err := c.Read(1, 0, 1, true)
			if err != nil || !hit || len(data) != blockSize {
				b.Fatalf("hit=%v len=%d err=%v", hit, len(data), err)
			}
		}
	})
	b.Run("binaryPipelined", func(b *testing.B) {
		addr := startBenchServer(b)
		p, err := lapclient.DialPool(addr, 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		b.SetBytes(blockSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				data, hit, err := p.Read(1, 0, 1, true)
				if err != nil || !hit || len(data) != blockSize {
					b.Fatalf("hit=%v len=%d err=%v", hit, len(data), err)
				}
			}
		})
	})
}

// BenchmarkClusterRead measures the cooperative tier's value
// proposition end to end over loopback TCP, one 8 KiB block with data
// per read: localHit is a block in this node's own cache (the floor);
// remoteHit is a block missing locally but resident in the ring
// owner's memory — the request crosses to the owner and back, two
// wire hops; localDisk is the same miss with no peer tier, served by
// a backing store with a disk-like 2 ms access time. The paper's
// premise is the gap between the last two: a peer's memory is an
// order of magnitude closer than the disk. BENCH_cluster.json records
// a reference run (make bench).
func BenchmarkClusterRead(b *testing.B) {
	const blockSize = 8192
	b.Run("localHit", func(b *testing.B) {
		addr := startBenchServer(b)
		c, err := lapclient.DialConn(addr, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		dsts := [][]byte{make([]byte, blockSize)}
		b.SetBytes(blockSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, err := c.ReadInto(1, 0, 1, dsts)
			if err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
	b.Run("remoteHit", func(b *testing.B) {
		// Node 0 gets a near-zero cache so every read misses locally
		// and forwards; its peers hold the working set in memory.
		const hot = 4096
		nodes, stop, err := cluster.StartLocal(3, func(i int, addrs []string) lapcache.Config {
			cacheBlocks := 2 * hot
			if i == 0 {
				cacheBlocks = 4
			}
			return lapcache.Config{
				Alg:         core.SpecNP,
				BlockSize:   blockSize,
				CacheBlocks: cacheBlocks,
				Store:       lapcache.NewMemStore(blockSize, 0),
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(stop)
		var f blockdev.FileID
		for f = 1; ; f++ {
			if addr, self := nodes[0].Node.OwnerOf(f); !self && addr != "" {
				break
			}
		}
		owner, _ := nodes[0].Node.OwnerOf(f)
		for _, m := range nodes {
			if m.Addr == owner {
				m.Engine.Preload(f, 0, hot, false)
			}
		}
		c, err := lapclient.DialConn(nodes[0].Addr, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		dsts := [][]byte{make([]byte, blockSize)}
		b.SetBytes(blockSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, err := c.ReadInto(f, blockdev.BlockNo(i%hot), 1, dsts)
			if err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
		b.StopTimer()
		if s := nodes[0].Engine.Snapshot(); s.StoreReads != 0 {
			b.Fatalf("remoteHit read the local store %d times", s.StoreReads)
		}
	})
	b.Run("localDisk", func(b *testing.B) {
		// The same miss stream with no peer tier: a 2 ms store access
		// per read, the simulator's disk constant.
		e, err := lapcache.New(lapcache.Config{
			Alg:         core.SpecNP,
			BlockSize:   blockSize,
			CacheBlocks: 4,
			Store:       lapcache.NewMemStore(blockSize, 2*time.Millisecond),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Shutdown)
		srv := lapcache.NewServer(e)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		b.Cleanup(srv.Close)
		c, err := lapclient.DialConn(ln.Addr().String(), 1)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.SetBytes(blockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, hit, err := c.Read(1, blockdev.BlockNo(i%(1<<18)), 1, true)
			if err != nil || hit || len(data) != blockSize {
				b.Fatalf("hit=%v len=%d err=%v", hit, len(data), err)
			}
		}
	})
}

// bootChurnBench boots a 3-node dynamic-membership cluster with the
// given replica count, handoff budget and a disk-like 2 ms store,
// writes hot blocks of one file, kills the file's ring owner, and
// waits for the survivors to convict it and move the ring. It returns
// the survivors' view: the file, a connection to a survivor, the node
// list, and the killed node's index.
func bootChurnBench(b *testing.B, replicas, hot int, bps int64) (blockdev.FileID, *lapclient.Conn, []*cluster.LocalNode, int) {
	b.Helper()
	const blockSize = 8192
	nodes, stop, err := cluster.StartLocalWith(3,
		func(i int, addrs []string) lapcache.Config {
			return lapcache.Config{
				Alg:         core.SpecNP,
				BlockSize:   blockSize,
				CacheBlocks: 4 * hot,
				Store:       lapcache.NewMemStore(blockSize, 2*time.Millisecond),
			}
		},
		cluster.StartLocalOpts{TweakNode: func(i int, cfg *cluster.Config) {
			cfg.Dynamic = true
			for _, a := range cfg.Peers {
				if a != cfg.Self {
					cfg.Join = append(cfg.Join, a)
				}
			}
			cfg.Replicas = replicas
			cfg.GossipInterval = 20 * time.Millisecond
			cfg.SuspicionTimeout = 300 * time.Millisecond
			cfg.HandoffBps = bps
			cfg.PeerCallTimeout = time.Second
		}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)

	const f = blockdev.FileID(1)
	victim := -1
	for i, m := range nodes {
		if m.Node.Owned(f) {
			victim = i
		}
	}
	survivor := (victim + 1) % 3
	c, err := lapclient.DialConn(nodes[survivor].Addr, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	for off := 0; off < hot; off += 8 {
		if err := c.Write(f, blockdev.BlockNo(off), 8, nil); err != nil {
			b.Fatal(err)
		}
	}

	nodes[victim].Kill()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for i, m := range nodes {
			if i != victim && len(m.Node.MemberAddrs()) != 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("survivors never convicted the killed owner")
		}
		time.Sleep(20 * time.Millisecond)
	}
	return f, c, nodes, victim
}

// BenchmarkMembership measures what dynamic membership buys and costs.
// replicaHit reads blocks whose ring owner is dead with R=2: the moved
// arc lands on the successor already holding the replica in memory.
// diskDegrade is the same owner death with R=1: the new owner has
// nothing and pays the 2 ms store access per span — the latency cliff
// replication removes. handoff measures the bounded-rate rebalancer
// re-homing cached blocks after a ring move, in blocks-moved/s: with
// a 1 MiB/s budget and 8 KiB blocks the measured rate must sit near
// (and never above) 128. BENCH_membership.json records a reference
// run (make bench).
func BenchmarkMembership(b *testing.B) {
	const blockSize = 8192
	const hot = 256
	b.Run("replicaHit", func(b *testing.B) {
		f, c, _, _ := bootChurnBench(b, 2, hot, 8<<20)
		b.SetBytes(blockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, hit, err := c.Read(f, blockdev.BlockNo(i%hot), 1, true)
			if err != nil || !hit || len(data) != blockSize {
				b.Fatalf("hit=%v len=%d err=%v", hit, len(data), err)
			}
		}
	})
	b.Run("diskDegrade", func(b *testing.B) {
		f, c, _, _ := bootChurnBench(b, 1, hot, 8<<20)
		b.SetBytes(blockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Read far past the written range so every access misses the
			// new owner's memory: with R=1 the dead owner's blocks are
			// simply gone, and the store's 2 ms access is the price.
			data, _, err := c.Read(f, blockdev.BlockNo(hot+i), 1, true)
			if err != nil || len(data) != blockSize {
				b.Fatalf("len=%d err=%v", len(data), err)
			}
		}
	})
	b.Run("handoff", func(b *testing.B) {
		const bps = 1 << 20 // 128 blocks/s at 8 KiB
		var blocks uint64
		var busy time.Duration
		for i := 0; i < b.N; i++ {
			_, _, nodes, victim := bootChurnBench(b, 1, hot, bps)
			s1 := (victim + 1) % 3
			// During the dead window, load the survivor's cache with
			// blocks of files the 2-member ring assigns elsewhere. The
			// rejoin's ring move can only shift arcs toward the returning
			// node, so every one of these blocks stays foreign to s1 and
			// the post-rejoin sweep must push all of them out under the
			// byte budget.
			seeded := 0
			for f := blockdev.FileID(2); seeded < hot/8; f++ {
				if nodes[s1].Node.Owned(f) {
					continue
				}
				nodes[s1].Engine.Preload(f, 0, 8, false)
				seeded++
			}
			start := time.Now()
			moved := movedBlocks(nodes)
			if err := nodes[victim].Restart(10 * time.Second); err != nil {
				b.Fatal(err)
			}
			waitRingSize(b, nodes, 3)
			// Quiescence: the rebalancer has stopped moving blocks.
			last, lastChange := movedBlocks(nodes), time.Now()
			for time.Since(lastChange) < 500*time.Millisecond {
				time.Sleep(50 * time.Millisecond)
				if cur := movedBlocks(nodes); cur != last {
					last, lastChange = cur, time.Now()
				}
			}
			if last == moved {
				b.Fatal("rejoin moved no handoff blocks")
			}
			blocks += last - moved
			busy += lastChange.Sub(start)
		}
		if busy > 0 {
			b.ReportMetric(float64(blocks)/busy.Seconds(), "blocks-moved/s")
		}
	})
}

// movedBlocks sums handoff block counters across live nodes.
func movedBlocks(nodes []*cluster.LocalNode) uint64 {
	var n uint64
	for _, m := range nodes {
		n += m.Node.HandoffStats().BlocksMoved
	}
	return n
}

// waitRingSize polls until every node's ring has want members.
func waitRingSize(b *testing.B, nodes []*cluster.LocalNode, want int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, m := range nodes {
			if len(m.Node.MemberAddrs()) != want {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("rings never converged to %d members", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// BenchmarkAblationNChance sweeps xFS's N-chance recirculation count
// on the Sprite workload: -1 disables singlet forwarding entirely
// (every node for itself), showing what cooperation buys.
func BenchmarkAblationNChance(b *testing.B) {
	for _, c := range []struct {
		name   string
		recirc int
	}{{"noForwarding", -1}, {"nChance1", 1}, {"nChance2", 2}, {"nChance4", 4}} {
		b.Run(c.name, func(b *testing.B) {
			s := experiment.TinyScale()
			var r experiment.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiment.RunCell(s, experiment.Cell{
					FS: experiment.XFS, Workload: experiment.Sprite,
					Alg: core.SpecLnAgrISPPM1, CacheMB: 1,
					Recirculations: c.recirc,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.AvgReadMs, "read_ms")
			b.ReportMetric(float64(r.DiskAccesses), "disk_accesses")
		})
	}
}

// BenchmarkAblationIntervalVsBlock compares the paper's interval-and-
// size modelling against the original block-granularity PPM it evolved
// from (§2.2): same driver, same order, different state.
func BenchmarkAblationIntervalVsBlock(b *testing.B) {
	for _, c := range []struct {
		name string
		kind core.AlgKind
	}{{"isppm", core.AlgISPPM}, {"blockppm", core.AlgBlockPPM}} {
		b.Run(c.name, func(b *testing.B) {
			runAblationCell(b, core.AlgSpec{
				Kind: c.kind, Order: 1,
				Mode: core.ModeAggressive, MaxOutstanding: 1,
			})
		})
	}
}
