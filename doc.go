// Package repro is a from-scratch Go reproduction of "Linear
// Aggressive Prefetching: A Way to Increase the Performance of
// Cooperative Caches" (T. Cortes, J. Labarta, IPPS 1999).
//
// The implementation lives under internal/: a deterministic
// discrete-event simulator (internal/sim), the machine models of the
// paper's Table 1 (internal/machine, internal/netmodel,
// internal/diskmodel), the cooperative-cache substrate
// (internal/cachesim), the two simulated file systems (internal/pafs,
// internal/xfs), the synthetic CHARISMA and Sprite workloads
// (internal/workload), the paper's contribution — the OBA and IS_PPM
// predictors and the linear aggressive prefetch driver
// (internal/core) — and the experiment harness regenerating every
// figure and table (internal/experiment).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks
// in bench_test.go regenerate each figure and table:
//
//	go test -bench=Fig4 -benchtime=1x .
package repro
